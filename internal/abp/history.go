package abp

import (
	"sort"
	"sync"
	"time"
)

// Revision is one published version of a filter list.
type Revision struct {
	// Time is when the revision was published.
	Time time.Time
	// Rules is the complete rule set of the list at that time.
	Rules []*Rule
}

// History is the time-ordered revision history of a filter list. It backs
// the temporal analyses of §3 (Figure 1, Figure 3) and lets the coverage
// measurement of §4.2 replay "the filter list as it existed at time t".
type History struct {
	// Name identifies the list.
	Name string

	revisions []Revision

	// compiled caches one *List per revision index, so replaying 60 months
	// against a history compiles each revision once instead of once per
	// month. Guarded by mu; safe for concurrent ListAt callers (the sharded
	// replay hits the same revision from many workers).
	mu       sync.Mutex
	compiled map[int]*List
}

// NewHistory creates an empty history for the named list.
func NewHistory(name string) *History { return &History{Name: name} }

// Append adds a revision. Revisions must be appended in chronological
// order; Append panics otherwise, since out-of-order histories would
// silently corrupt every temporal analysis.
func (h *History) Append(t time.Time, rules []*Rule) {
	if n := len(h.revisions); n > 0 && t.Before(h.revisions[n-1].Time) {
		panic("abp: revisions must be appended in chronological order")
	}
	h.revisions = append(h.revisions, Revision{Time: t, Rules: rules})
}

// Revisions returns the revisions in chronological order. The returned
// slice must not be modified.
func (h *History) Revisions() []Revision { return h.revisions }

// Len returns the number of revisions.
func (h *History) Len() int { return len(h.revisions) }

// At returns the revision in force at time t: the latest revision published
// at or before t. It returns false when the list did not exist yet.
func (h *History) At(t time.Time) (Revision, bool) {
	i := h.indexAt(t)
	if i < 0 {
		return Revision{}, false
	}
	return h.revisions[i], true
}

// indexAt returns the index of the revision in force at t, or -1.
func (h *History) indexAt(t time.Time) int {
	i := sort.Search(len(h.revisions), func(i int) bool {
		return h.revisions[i].Time.After(t)
	})
	return i - 1
}

// ListAt returns the compiled list as it existed at time t, or nil if it
// did not exist yet. Compilation is cached per revision and the cache is
// safe for concurrent callers; the returned List is shared, which is fine
// because compiled lists are immutable.
func (h *History) ListAt(t time.Time) *List {
	i := h.indexAt(t)
	if i < 0 {
		return nil
	}
	return h.listFor(i)
}

// LatestList returns the compiled most recent revision (nil for an empty
// history), sharing the same per-revision cache as ListAt.
func (h *History) LatestList() *List {
	if len(h.revisions) == 0 {
		return nil
	}
	return h.listFor(len(h.revisions) - 1)
}

// listFor compiles revision i exactly once.
func (h *History) listFor(i int) *List {
	h.mu.Lock()
	defer h.mu.Unlock()
	if l, ok := h.compiled[i]; ok {
		return l
	}
	if h.compiled == nil {
		h.compiled = make(map[int]*List)
	}
	l := NewList(h.Name, h.revisions[i].Rules)
	h.compiled[i] = l
	return l
}

// Latest returns the most recent revision; ok is false for empty histories.
func (h *History) Latest() (Revision, bool) {
	if len(h.revisions) == 0 {
		return Revision{}, false
	}
	return h.revisions[len(h.revisions)-1], true
}

// ClassSeries returns, for each revision, the revision time and the rule
// count per Figure 1 class. This is exactly the data behind Figure 1.
func (h *History) ClassSeries() []ClassPoint {
	out := make([]ClassPoint, 0, len(h.revisions))
	for _, rev := range h.revisions {
		p := ClassPoint{Time: rev.Time, Counts: make(map[Class]int, len(AllClasses))}
		for _, r := range rev.Rules {
			if c := r.Class(); c != ClassUnknown {
				p.Counts[c]++
				p.Total++
			}
		}
		out = append(out, p)
	}
	return out
}

// ClassPoint is one revision's rule-count breakdown by class.
type ClassPoint struct {
	Time   time.Time
	Counts map[Class]int
	Total  int
}

// DomainFirstSeen returns, for every domain ever targeted by the list, the
// time of the first revision whose rules target it. Figure 3 and Figure 7
// are computed from these times.
func (h *History) DomainFirstSeen() map[string]time.Time {
	first := make(map[string]time.Time)
	for _, rev := range h.revisions {
		for _, r := range rev.Rules {
			for _, d := range r.TargetDomains() {
				if _, ok := first[d]; !ok {
					first[d] = rev.Time
				}
			}
		}
	}
	return first
}

// ChurnPerRevision returns the mean number of rules added or modified per
// revision, computed over consecutive revision pairs by comparing raw rule
// text sets. The paper reports this as "adds or modifies N filter rules for
// every revision on average".
func (h *History) ChurnPerRevision() float64 {
	if len(h.revisions) < 2 {
		return 0
	}
	total := 0
	for i := 1; i < len(h.revisions); i++ {
		prev := make(map[string]bool, len(h.revisions[i-1].Rules))
		for _, r := range h.revisions[i-1].Rules {
			prev[r.Raw] = true
		}
		for _, r := range h.revisions[i].Rules {
			if !prev[r.Raw] {
				total++
			}
		}
	}
	return float64(total) / float64(len(h.revisions)-1)
}

// MergeHistories combines several histories into one ("Combined EasyList"
// = Adblock Warning Removal List + EasyList anti-adblock sections). A
// revision of the merged list exists at every time any input list revised;
// its rules are the union of the inputs' rules in force at that time.
func MergeHistories(name string, hs ...*History) *History {
	timeSet := make(map[time.Time]bool)
	for _, h := range hs {
		for _, rev := range h.revisions {
			timeSet[rev.Time] = true
		}
	}
	times := make([]time.Time, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })

	merged := NewHistory(name)
	for _, t := range times {
		var rules []*Rule
		for _, h := range hs {
			if rev, ok := h.At(t); ok {
				rules = append(rules, rev.Rules...)
			}
		}
		merged.Append(t, rules)
	}
	return merged
}
