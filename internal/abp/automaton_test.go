package abp

import (
	"errors"
	"strings"
	"testing"

	"adwars/internal/artifact"
)

func isCorrupt(err error) bool { return errors.Is(err, artifact.ErrCorrupt) }

func TestAutomatonKeyword(t *testing.T) {
	cases := map[string]string{
		"||pagefair.com^$third-party": "pagefair",
		"/ads.js?":                    "ads",
		"||a^":                        "",
		"*^*":                         "",
		// Keyword() rejects both runs here (the star can extend "abdetect007"
		// and "js" ends an unanchored pattern); AutomatonKeyword needs no
		// boundaries — any URL this rule matches contains "abdetect007".
		"/abdetect007*.js$script":    "abdetect007",
		"|http://x.com/detect.js|":   "detect",
		"||cdn.example^adsbygoogle^": "adsbygoogle",
		"/AdFrame/ADS.JS":            "adframe",
		"/ab^":                       "",
		"smashboards.com###notice":   "", // element hiding: never indexed
	}
	for line, want := range cases {
		r, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if got := r.AutomatonKeyword(); got != want {
			t.Errorf("AutomatonKeyword(%q) = %q, want %q", line, got, want)
		}
	}
}

// TestAutomatonKeywordIsSubstringOfMatches pins the soundness property the
// probe stage rests on: whenever a rule matches a URL, the rule's automaton
// keyword occurs in the lower-cased URL as a plain substring.
func TestAutomatonKeywordIsSubstringOfMatches(t *testing.T) {
	rules := benchRules(2000)
	for _, u := range benchURLs {
		q := Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
		low := strings.ToLower(u)
		for _, r := range rules {
			if !r.IsHTTP() || !r.MatchRequest(q) {
				continue
			}
			if kw := r.AutomatonKeyword(); kw != "" && !strings.Contains(low, kw) {
				t.Errorf("rule %q matches %q but keyword %q is not a substring", r.Raw, u, kw)
			}
		}
	}
}

// TestAutomatonRoundTrip proves the serialized region is self-contained:
// reattaching a list's own bytes (NewListCompiled) reproduces the exact
// decisions and serializes back to identical bytes.
func TestAutomatonRoundTrip(t *testing.T) {
	rules := benchRules(1000)
	orig := NewList("rt", rules)
	blob := orig.AutomatonBytes()
	re, err := NewListCompiled("rt", rules, blob)
	if err != nil {
		t.Fatalf("NewListCompiled: %v", err)
	}
	if got := re.AutomatonBytes(); string(got) != string(blob) {
		t.Fatal("reattached automaton serializes to different bytes")
	}
	// Determinism: compiling the same rules again yields identical bytes.
	if again := NewList("rt", rules).AutomatonBytes(); string(again) != string(blob) {
		t.Fatal("recompiling the same rules produced different bytes")
	}
	for _, u := range benchURLs {
		q := Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
		d1, r1 := orig.MatchRequest(q)
		d2, r2 := re.MatchRequest(q)
		if d1 != d2 || (r1 == nil) != (r2 == nil) || (r1 != nil && r1.Raw != r2.Raw) {
			t.Fatalf("%q: original (%v) != reattached (%v)", u, d1, d2)
		}
	}
}

// TestAutomatonRejectsCorruption is the openAutomaton corruption matrix:
// every structural damage class the validator guards is refused with an
// ErrCorrupt-wrapping error rather than accepted or panicking.
func TestAutomatonRejectsCorruption(t *testing.T) {
	rules := benchRules(500)
	list := NewList("c", rules)
	good := list.AutomatonBytes()
	crc := rulesChecksum(list.Rules())

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = f(b)
		if _, err := openAutomaton(b, list.Len(), crc); err == nil {
			t.Errorf("%s: corruption accepted", name)
		} else if !isCorrupt(err) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
	mutate("truncated-header", func(b []byte) []byte { return b[:acHeaderSize-1] })
	mutate("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad-version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("truncated-body", func(b []byte) []byte { return b[:len(b)-4] })
	mutate("inflated-slots", func(b []byte) []byte { b[8]++; return b })
	mutate("nonzero-root", func(b []byte) []byte { b[12] = 1; return b })
	mutate("stale-rules-crc", func(b []byte) []byte { b[32] ^= 0xFF; return b })
	mutate("ordinal-overflow", func(b []byte) []byte {
		// The last u32 is a generic or output ordinal; push it past numRules.
		for i := 0; i < 4; i++ {
			b[len(b)-4+i] = 0xFF
		}
		return b
	})

	// Wrong rule count / rule content at the call site.
	if _, err := openAutomaton(append([]byte(nil), good...), list.Len()-1, crc); err == nil {
		t.Error("rule-count mismatch accepted")
	}
	if _, err := openAutomaton(append([]byte(nil), good...), list.Len(), crc^1); err == nil {
		t.Error("rule-CRC mismatch accepted")
	}
	// The pristine blob must still open.
	if _, err := openAutomaton(append([]byte(nil), good...), list.Len(), crc); err != nil {
		t.Fatalf("pristine blob refused: %v", err)
	}
}

// TestAutomatonNonASCIIFallback: URLs with non-ASCII bytes must take the
// token-index path (byte-wise case folding is unsound for them — the Kelvin
// sign lowers to ASCII 'k') and still agree with the linear reference.
func TestAutomatonNonASCIIFallback(t *testing.T) {
	l := buildList(t, "nonascii",
		"/kelvin-probe.js",
		"||example.com^",
		"@@||example.com/ok",
	)
	urls := []string{
		"http://example.com/Kelvin-probe.js", // Kelvin sign folds to 'k'
		"http://example.com/ok/über.js",
		"http://example.com/café.png",
	}
	for _, u := range urls {
		q := Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
		gd, gr := l.MatchRequest(q)
		ld, lr := l.MatchRequestLinear(q)
		if gd != ld || gr != lr {
			t.Errorf("%q: MatchRequest (%v) != linear (%v)", u, gd, ld)
		}
		got := l.MatchingHTTPRules(q)
		want := l.MatchingHTTPRulesLinear(q)
		if len(got) != len(want) {
			t.Errorf("%q: all-matches %d != linear %d", u, len(got), len(want))
		}
	}
}

// TestNoMatchZeroAllocs is the hot-path allocation gate: a miss through the
// automaton must not allocate at all. Skipped under the race detector,
// whose instrumentation allocates.
func TestNoMatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	list := NewList("gate", benchRules(2000))
	q := Request{URL: "http://cdn.unrelated.net/static/app.js", Type: TypeScript, PageDomain: "page.com"}
	allocs := testing.AllocsPerRun(200, func() {
		if d, _ := list.MatchRequest(q); d != NoMatch {
			t.Fatal("URL must not match")
		}
	})
	if allocs != 0 {
		t.Fatalf("no-match MatchRequest allocates %.1f/op, want 0", allocs)
	}
}

// TestMatchZeroAllocs extends the gate to matching lookups: candidate
// verification through stack scratch must stay allocation-free too.
func TestMatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	list := NewList("gate", benchRules(2000))
	qs := make([]Request, len(benchURLs))
	for i, u := range benchURLs {
		qs[i] = Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		list.MatchRequest(qs[i%len(qs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("MatchRequest allocates %.1f/op, want 0", allocs)
	}
}

// TestAppendMatchingHTTPRulesZeroAllocs gates the serving data plane's
// all-matches path: with a caller-provided buffer it must not allocate.
func TestAppendMatchingHTTPRulesZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	list := NewList("gate", benchRules(2000))
	qs := make([]Request, len(benchURLs))
	for i, u := range benchURLs {
		qs[i] = Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
	}
	buf := make([]*Rule, 0, 16)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf = list.AppendMatchingHTTPRules(buf[:0], qs[i%len(qs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("AppendMatchingHTTPRules allocates %.1f/op, want 0", allocs)
	}
}

// TestAutomatonSpeedupFloor asserts the automaton actually beats the token
// index it replaced — a regression here means the probe stage rotted.
func TestAutomatonSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing is unrepresentative under -race")
	}
	list := NewList("gate", benchRules(2000))
	list.tokenIndexes()
	q := func(i int) Request {
		return Request{URL: benchURLs[i%len(benchURLs)], Type: TypeScript, PageDomain: "page.com"}
	}
	auto := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			list.MatchRequest(q(i))
		}
	})
	tok := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			list.MatchRequestTokenIndex(q(i))
		}
	})
	an, tn := auto.NsPerOp(), tok.NsPerOp()
	// The measured gap on dev hardware is ~95×; 1.5× leaves room for noisy
	// CI while still catching an automaton that silently degrades to the
	// fallback path.
	if an <= 0 || float64(tn) < 1.5*float64(an) {
		t.Fatalf("automaton %d ns/op vs token index %d ns/op: speedup %.2fx below 1.5x floor",
			an, tn, float64(tn)/float64(an))
	}
	if p50 := matchP50ns(list); p50 >= 1000 {
		t.Fatalf("p50 MatchRequest = %.0f ns, want < 1µs", p50)
	}
}
