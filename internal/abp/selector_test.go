package abp

import "testing"

func el(tag, id string, classes ...string) *Element {
	return &Element{Tag: tag, ID: id, Classes: classes}
}

func TestSelectorID(t *testing.T) {
	s, err := ParseSelector("#noticeMain")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Match(el("div", "noticeMain")) {
		t.Error("want match by id")
	}
	if s.Match(el("div", "other")) {
		t.Error("must not match different id")
	}
}

func TestSelectorClass(t *testing.T) {
	s, err := ParseSelector(".adblock-notice")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Match(el("div", "", "wrap", "adblock-notice")) {
		t.Error("want match by class")
	}
	if s.Match(el("div", "", "adblock")) {
		t.Error("must not match partial class token")
	}
}

func TestSelectorTagCompound(t *testing.T) {
	s, err := ParseSelector("div#overlay")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Match(el("div", "overlay")) {
		t.Error("want match tag+id")
	}
	if s.Match(el("span", "overlay")) {
		t.Error("must not match wrong tag")
	}
}

func TestSelectorAttribute(t *testing.T) {
	s, err := ParseSelector(`div[data-role="bait"]`)
	if err != nil {
		t.Fatal(err)
	}
	e := el("div", "")
	e.Attrs = map[string]string{"data-role": "bait"}
	if !s.Match(e) {
		t.Error("want attribute match")
	}
	e.Attrs["data-role"] = "content"
	if s.Match(e) {
		t.Error("must not match wrong attribute value")
	}
}

func TestSelectorAttrPrefixAndSubstr(t *testing.T) {
	pre, err := ParseSelector(`[id^="ad-"]`)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Match(el("div", "ad-banner")) {
		t.Error("prefix predicate should match")
	}
	if pre.Match(el("div", "brand-ad-banner")) {
		t.Error("prefix predicate must anchor at start")
	}
	sub, err := ParseSelector(`[class*="block"]`)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Match(el("div", "", "adblocker-note")) {
		t.Error("substring predicate should match")
	}
}

func TestSelectorRejectsCombinators(t *testing.T) {
	for _, bad := range []string{"div p", "a > b", "x + y", "p ~ q", "a, b"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) should fail", bad)
		}
	}
}

func TestSelectorRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"", "#", ".", "[unterminated", "##", "div##"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) should fail", bad)
		}
	}
}

func TestSelectorMultipleClasses(t *testing.T) {
	s, err := ParseSelector(".a.b")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Match(el("div", "", "b", "a", "c")) {
		t.Error("want match when all classes present")
	}
	if s.Match(el("div", "", "a")) {
		t.Error("must require every class")
	}
}

func TestSelectorNilElement(t *testing.T) {
	s, _ := ParseSelector("#x")
	if s.Match(nil) {
		t.Error("nil element must not match")
	}
}
