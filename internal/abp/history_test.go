package abp

import (
	"testing"
	"time"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func rules(t *testing.T, lines ...string) []*Rule {
	t.Helper()
	var rs []*Rule
	for _, l := range lines {
		rs = append(rs, mustParse(t, l))
	}
	return rs
}

func TestHistoryAt(t *testing.T) {
	h := NewHistory("aak")
	h.Append(day(2014, 2, 1), rules(t, "||a.com^"))
	h.Append(day(2014, 3, 1), rules(t, "||a.com^", "||b.com^"))
	h.Append(day(2014, 4, 1), rules(t, "||a.com^", "||b.com^", "c.com###x"))

	if _, ok := h.At(day(2014, 1, 15)); ok {
		t.Error("list should not exist before first revision")
	}
	rev, ok := h.At(day(2014, 3, 15))
	if !ok || len(rev.Rules) != 2 {
		t.Fatalf("At(mid-March) = %v rules, want 2", len(rev.Rules))
	}
	rev, ok = h.At(day(2014, 3, 1))
	if !ok || len(rev.Rules) != 2 {
		t.Fatal("At(exact revision time) should return that revision")
	}
	rev, _ = h.At(day(2020, 1, 1))
	if len(rev.Rules) != 3 {
		t.Fatal("At(future) should return the latest revision")
	}
}

func TestHistoryAppendOrderPanics(t *testing.T) {
	h := NewHistory("x")
	h.Append(day(2015, 6, 1), nil)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append should panic")
		}
	}()
	h.Append(day(2015, 5, 1), nil)
}

func TestHistoryListAt(t *testing.T) {
	h := NewHistory("x")
	if h.ListAt(day(2015, 1, 1)) != nil {
		t.Error("ListAt on empty history should be nil")
	}
	h.Append(day(2015, 1, 1), rules(t, "||a.com^"))
	l := h.ListAt(day(2015, 2, 1))
	if l == nil || l.Len() != 1 {
		t.Fatal("ListAt should compile the in-force revision")
	}
}

func TestClassSeries(t *testing.T) {
	h := NewHistory("x")
	h.Append(day(2014, 1, 1), rules(t, "||a.com^", "b.com###x"))
	h.Append(day(2014, 2, 1), rules(t, "||a.com^", "b.com###x", "/ads.js"))
	series := h.ClassSeries()
	if len(series) != 2 {
		t.Fatalf("len(series) = %d", len(series))
	}
	if series[0].Total != 2 || series[1].Total != 3 {
		t.Fatalf("totals = %d, %d", series[0].Total, series[1].Total)
	}
	if series[1].Counts[ClassHTTPPlain] != 1 {
		t.Error("plain HTTP rule not counted")
	}
}

func TestDomainFirstSeen(t *testing.T) {
	h := NewHistory("x")
	h.Append(day(2014, 1, 1), rules(t, "||a.com^"))
	h.Append(day(2014, 2, 1), rules(t, "||a.com^", "b.com###x"))
	first := h.DomainFirstSeen()
	if !first["a.com"].Equal(day(2014, 1, 1)) {
		t.Errorf("a.com first seen %v", first["a.com"])
	}
	if !first["b.com"].Equal(day(2014, 2, 1)) {
		t.Errorf("b.com first seen %v", first["b.com"])
	}
}

func TestChurnPerRevision(t *testing.T) {
	h := NewHistory("x")
	h.Append(day(2014, 1, 1), rules(t, "||a.com^"))
	h.Append(day(2014, 2, 1), rules(t, "||a.com^", "||b.com^", "||c.com^"))
	h.Append(day(2014, 3, 1), rules(t, "||a.com^", "||b.com^", "||c.com^"))
	// Revision 2 added 2 rules, revision 3 added 0 → mean 1.0.
	if got := h.ChurnPerRevision(); got != 1.0 {
		t.Fatalf("churn = %v, want 1.0", got)
	}
}

func TestMergeHistories(t *testing.T) {
	a := NewHistory("awrl")
	a.Append(day(2013, 1, 1), rules(t, "x.com###warn"))
	a.Append(day(2013, 6, 1), rules(t, "x.com###warn", "y.com###warn"))
	b := NewHistory("easylist-aa")
	b.Append(day(2011, 5, 1), rules(t, "||z.com^"))

	m := MergeHistories("combined", a, b)
	if m.Len() != 3 {
		t.Fatalf("merged revisions = %d, want 3", m.Len())
	}
	// Before AWRL exists, combined == EasyList only.
	rev, _ := m.At(day(2012, 1, 1))
	if len(rev.Rules) != 1 {
		t.Fatalf("2012 combined rules = %d, want 1", len(rev.Rules))
	}
	rev, _ = m.At(day(2013, 7, 1))
	if len(rev.Rules) != 3 {
		t.Fatalf("2013-07 combined rules = %d, want 3", len(rev.Rules))
	}
}

func TestHistoryLatest(t *testing.T) {
	h := NewHistory("x")
	if _, ok := h.Latest(); ok {
		t.Error("empty history has no latest revision")
	}
	h.Append(day(2016, 7, 1), rules(t, "||a.com^"))
	rev, ok := h.Latest()
	if !ok || !rev.Time.Equal(day(2016, 7, 1)) {
		t.Error("Latest should return the last appended revision")
	}
}
