package abp

import "sort"

// RevisionDiff is the change set between two list revisions.
type RevisionDiff struct {
	// Added are rules present only in the newer revision.
	Added []*Rule
	// Removed are rules present only in the older revision.
	Removed []*Rule
}

// Churn returns the number of added-or-modified rules — the statistic the
// paper reports per revision (a modified rule appears as one removal plus
// one addition; the paper's "adds or modifies" counts the addition side).
func (d *RevisionDiff) Churn() int { return len(d.Added) }

// Diff compares two rule sets by raw rule text and returns the additions
// and removals, each in stable (sorted) order.
func Diff(old, new []*Rule) *RevisionDiff {
	oldSet := make(map[string]*Rule, len(old))
	for _, r := range old {
		oldSet[r.Raw] = r
	}
	newSet := make(map[string]*Rule, len(new))
	for _, r := range new {
		newSet[r.Raw] = r
	}
	d := &RevisionDiff{}
	for raw, r := range newSet {
		if _, ok := oldSet[raw]; !ok {
			d.Added = append(d.Added, r)
		}
	}
	for raw, r := range oldSet {
		if _, ok := newSet[raw]; !ok {
			d.Removed = append(d.Removed, r)
		}
	}
	sort.Slice(d.Added, func(i, j int) bool { return d.Added[i].Raw < d.Added[j].Raw })
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i].Raw < d.Removed[j].Raw })
	return d
}

// DiffHistory returns the change set between consecutive revisions: entry
// i describes the transition from revision i to revision i+1.
func (h *History) DiffHistory() []*RevisionDiff {
	if len(h.revisions) < 2 {
		return nil
	}
	out := make([]*RevisionDiff, 0, len(h.revisions)-1)
	for i := 1; i < len(h.revisions); i++ {
		out = append(out, Diff(h.revisions[i-1].Rules, h.revisions[i].Rules))
	}
	return out
}

// RulesForDomain returns the rules in a list that target the given domain,
// in insertion order — the §3.3 comparison of how two lists implement
// rules for the same site (Codes 9 and 10 in the paper).
func (l *List) RulesForDomain(domain string) []*Rule {
	var out []*Rule
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			if d == domain {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
