package abp

import (
	"fmt"
	"testing"
)

func buildList(t *testing.T, name string, lines ...string) *List {
	t.Helper()
	var rules []*Rule
	for _, l := range lines {
		rules = append(rules, mustParse(t, l))
	}
	return NewList(name, rules)
}

func TestListExceptionOverridesBlock(t *testing.T) {
	// The numerama.com example of Code 7 in the paper: /ads.js? blocks the
	// bait everywhere, the exception allows it on numerama.com.
	l := buildList(t, "test", "/ads.js?", "@@||numerama.com/ads.js")
	d, r := l.MatchRequest(req("http://numerama.com/ads.js?v=1", "numerama.com", TypeScript))
	if d != Allowed {
		t.Fatalf("decision = %v, want allowed", d)
	}
	if r == nil || !r.IsException() {
		t.Fatalf("deciding rule = %v, want the exception", r)
	}
	d, _ = l.MatchRequest(req("http://other.com/ads.js?v=1", "other.com", TypeScript))
	if d != Blocked {
		t.Fatalf("decision = %v, want blocked elsewhere", d)
	}
}

func TestListNoMatch(t *testing.T) {
	l := buildList(t, "test", "||pagefair.com^$third-party")
	d, r := l.MatchRequest(req("http://benign.com/app.js", "benign.com", TypeScript))
	if d != NoMatch || r != nil {
		t.Fatalf("got %v/%v, want no-match/nil", d, r)
	}
}

func TestListHiddenElements(t *testing.T) {
	l := buildList(t, "test",
		"smashboards.com###noticeMain",
		"###genericbanner",
		"example.com#@##genericbanner",
	)
	elems := []*Element{
		el("div", "noticeMain"),
		el("div", "genericbanner"),
		el("div", "content"),
	}
	hidden := l.HiddenElements("smashboards.com", elems)
	if len(hidden) != 2 {
		t.Fatalf("hidden = %v, want elements 0 and 1", hidden)
	}
	if _, ok := hidden[0]; !ok {
		t.Error("noticeMain should be hidden on smashboards.com")
	}
	// On example.com the exception rule unhides the generic banner.
	hidden = l.HiddenElements("example.com", elems)
	if _, ok := hidden[1]; ok {
		t.Error("exception rule should unhide genericbanner on example.com")
	}
	// noticeMain rule is domain-scoped, inert elsewhere.
	if _, ok := hidden[0]; ok {
		t.Error("domain-scoped rule must not fire on example.com")
	}
}

func TestListCountByClass(t *testing.T) {
	l := buildList(t, "test",
		"||a.com^",
		"||b.com^$domain=c.com",
		"/x.js$domain=d.com",
		"/y.js",
		"e.com###z",
		"###w",
	)
	got := l.CountByClass()
	want := map[Class]int{
		ClassHTTPAnchor: 1, ClassHTTPAnchorTag: 1, ClassHTTPTag: 1,
		ClassHTTPPlain: 1, ClassHTMLWithDomain: 1, ClassHTMLNoDomain: 1,
	}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("class %v: got %d, want %d", c, got[c], n)
		}
	}
}

func TestListDomains(t *testing.T) {
	l := buildList(t, "test",
		"||pagefair.com^$third-party",
		"smashboards.com###noticeMain",
		"/generic.js",
	)
	got := l.Domains()
	want := []string{"pagefair.com", "smashboards.com"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Domains() = %v, want %v", got, want)
	}
}

func TestExceptionDomainSplit(t *testing.T) {
	l := buildList(t, "test",
		"@@||numerama.com/ads.js",
		"@@||allowed.com^$script",
		"||blocked.com^",
	)
	exc, non := l.ExceptionDomainSplit()
	if len(exc) != 2 || len(non) != 1 {
		t.Fatalf("split = %v / %v", exc, non)
	}
}

func TestMatchingHTTPRules(t *testing.T) {
	l := buildList(t, "test", "/ads.js?", "||numerama.com^", "###x")
	rules := l.MatchingHTTPRules(req("http://numerama.com/ads.js?1", "numerama.com", TypeScript))
	if len(rules) != 2 {
		t.Fatalf("got %d matching rules, want 2", len(rules))
	}
}

func TestParseAndBuild(t *testing.T) {
	body := "! Anti-Adblock Killer\n||pagefair.com^$third-party\nyocast.tv###notice\nbroken###\n"
	l, errs := ParseAndBuild("aak", body)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want one (the broken selector)", errs)
	}
}

func TestKeywordIndexAgreesWithLinearScan(t *testing.T) {
	lines := []string{
		"||pagefair.com^$third-party",
		"||blockadblock.com^",
		"/advertising.js",
		"/ads.js?",
		"||npttech.com/advertising.js",
		"@@||numerama.com/ads.js",
		"/detector*.js$script",
	}
	l := buildList(t, "test", lines...)
	urls := []string{
		"http://www.npttech.com/advertising.js",
		"http://pagefair.com/score",
		"http://numerama.com/ads.js?x",
		"http://benign.com/app.js",
		"http://x.com/detector-v9.js",
	}
	for _, u := range urls {
		q := req(u, "page.com", TypeScript)
		decision, _ := l.MatchRequest(q)
		// Linear reference: exceptions first, then blocks.
		var want Decision
		for _, line := range lines {
			r := mustParse(t, line)
			if r.IsException() && r.MatchRequest(q) {
				want = Allowed
				break
			}
		}
		if want == NoMatch {
			for _, line := range lines {
				r := mustParse(t, line)
				if !r.IsException() && r.MatchRequest(q) {
					want = Blocked
					break
				}
			}
		}
		if decision != want {
			t.Errorf("url %q: index says %v, linear scan says %v", u, decision, want)
		}
	}
}

func TestElemHideException(t *testing.T) {
	l := buildList(t, "test",
		"###genericbanner",
		"video.example###notice",
		"@@||video.example^$elemhide",
	)
	elems := []*Element{el("div", "genericbanner"), el("div", "notice")}
	// $elemhide disables every hiding rule on the excepted domain.
	if hidden := l.HiddenElements("video.example", elems); len(hidden) != 0 {
		t.Fatalf("elemhide exception ignored: %v", hidden)
	}
	// Other domains are unaffected.
	if hidden := l.HiddenElements("other.example", elems); len(hidden) != 1 {
		t.Fatalf("generic rule should fire elsewhere: %v", hidden)
	}
}

func TestGenericHideException(t *testing.T) {
	l := buildList(t, "test",
		"###genericbanner",
		"news.example###notice",
		"@@||news.example^$generichide",
	)
	elems := []*Element{el("div", "genericbanner"), el("div", "notice")}
	hidden := l.HiddenElements("news.example", elems)
	if _, ok := hidden[0]; ok {
		t.Error("$generichide must disable the domain-less rule")
	}
	if _, ok := hidden[1]; !ok {
		t.Error("$generichide must keep domain-specific rules active")
	}
}

func TestElemHideDisabledLookup(t *testing.T) {
	l := buildList(t, "test", "@@||a.example^$elemhide", "@@||b.example^$generichide")
	all, generic := l.ElemHideDisabled("a.example")
	if !all || generic {
		t.Fatalf("a.example: all=%v generic=%v", all, generic)
	}
	all, generic = l.ElemHideDisabled("b.example")
	if all || !generic {
		t.Fatalf("b.example: all=%v generic=%v", all, generic)
	}
	all, generic = l.ElemHideDisabled("c.example")
	if all || generic {
		t.Fatalf("c.example should be unaffected")
	}
}
