package abp

import (
	"fmt"

	"adwars/internal/artifact"
)

// Tiered lists split one rule set across two automatons compiled against
// the same rules array and checksum:
//
//   - the HOT automaton (List.auto) holds the rules that actually fire in
//     production — plus every rule correctness pins there — in a small,
//     dense double-array that the decision path probes first;
//   - the COLD automaton (List.cold) holds the long tail of never-firing
//     blocking rules and is probed only when the hot tier cannot conclude
//     the verdict on its own.
//
// "Who Filters the Filters" measures that the overwhelming majority of
// crowdsourced rules never fire; tiering turns that skew into a working-
// set win: the memory a typical verdict walks shrinks to the hot tier
// while answers stay byte-identical to the untiered list (differential-
// tested and fuzzned against the linear reference).
//
// Two membership invariants make the staged probe exact, both enforced at
// attach time and guaranteed by CompileTiered's normalization:
//
//  1. Every exception rule is hot. An Allowed verdict can then conclude
//     from the hot probe alone: the first matching hot exception is the
//     globally first matching exception.
//  2. Every keyword-less HTTP rule is hot. The cold automaton carries no
//     generic bucket (a keyword-less cold rule would never be probed), so
//     a cold rule is always reachable through its keyword.
//
// Cold rules are therefore exactly a subset of keyword-bearing blocking
// rules. coldMinBlk — the lowest cold ordinal — lets a hot block below it
// win without the cold probe at all.

// CompileTiered compiles the list into a tiered copy: keep reports
// whether the rule at an ordinal belongs in the hot tier (typically
// "usage counters saw it fire"). The hot set is normalized with the rules
// correctness requires to stay hot — every exception rule and every
// keyword-less HTTP rule — so any keep predicate (including nil: nothing
// voluntarily hot) yields a semantically identical list. The receiver is
// unchanged; rules are shared, both lists stay safe for concurrent
// matchers.
func (l *List) CompileTiered(keep func(ord int) bool) *List {
	hot := make([]bool, len(l.rules))
	cold := make([]bool, len(l.rules))
	for ord, r := range l.rules {
		if !r.IsHTTP() {
			continue
		}
		switch {
		case r.Kind == KindHTTPException,
			r.AutomatonKeyword() == "",
			keep != nil && keep(ord):
			hot[ord] = true
		default:
			cold[ord] = true
		}
	}
	tl := &List{
		Name:        l.Name,
		rules:       l.rules,
		rulesCRC:    l.rulesCRC,
		elemHide:    l.elemHide,
		elemExcept:  l.elemExcept,
		hideIdx:     l.hideIdx,
		hideToggles: l.hideToggles,
	}
	tl.auto = buildAutomatonMember(l.rules, l.rulesCRC, hot)
	if err := tl.attachCold(buildAutomatonMember(l.rules, l.rulesCRC, cold)); err != nil {
		// Unreachable: the normalization above establishes every invariant
		// attachCold checks.
		panic(fmt.Sprintf("abp: internal: freshly compiled tiers failed validation: %v", err))
	}
	return tl
}

// NewListTiered is NewListCompiled for a tiered (schema v4) snapshot: the
// hot and cold serialized automaton regions are validated against the
// rule set — both carry the full set's count and checksum — then the tier
// membership invariants are re-derived from the automatons' own output
// sets and enforced, so a snapshot whose tiers were miscompiled (an
// exception relegated to cold, a rule present in both tiers or in
// neither) is refused as corrupt rather than silently changing verdicts.
func NewListTiered(name string, rules []*Rule, hotAuto, coldAuto []byte) (*List, error) {
	l, err := newList(name, rules, hotAuto)
	if err != nil {
		return nil, err
	}
	cold, err := openAutomaton(coldAuto, len(l.rules), l.rulesCRC)
	if err != nil {
		return nil, err
	}
	if err := l.attachCold(cold); err != nil {
		return nil, err
	}
	return l, nil
}

// attachCold validates the tier membership invariants against the already
// attached hot automaton and installs the cold tier. Membership is
// derived from the automatons themselves (outputs ∪ generic), so no
// separate membership table needs serializing — the snapshot sections are
// self-describing.
func (l *List) attachCold(cold *automaton) error {
	corrupt := func(format string, args ...any) error {
		return artifact.Corruptf("tier-invalid", format, args...)
	}
	if n := len(cold.generic); n > 0 {
		return corrupt("cold tier carries %d keyword-less rules (they must be hot)", n)
	}
	hot := make([]bool, len(l.rules))
	for _, o := range l.auto.outputs {
		hot[o] = true
	}
	for _, g := range l.auto.generic {
		hot[g] = true
	}
	inCold := make([]bool, len(l.rules))
	minBlk := ^uint32(0)
	for _, o := range cold.outputs {
		if hot[o] {
			return corrupt("rule %d present in both tiers", o)
		}
		inCold[o] = true
		if o < minBlk {
			minBlk = o
		}
	}
	for ord, r := range l.rules {
		if !r.IsHTTP() {
			continue
		}
		if hot[ord] {
			continue
		}
		if !inCold[ord] {
			return corrupt("HTTP rule %d missing from both tiers", ord)
		}
		if r.Kind != KindHTTPBlock {
			return corrupt("exception rule %d relegated to the cold tier", ord)
		}
	}
	l.cold = cold
	l.hot = hot
	l.coldMinBlk = minBlk
	return nil
}

// Tiered reports whether the list carries a hot/cold tier split.
func (l *List) Tiered() bool { return l.cold != nil }

// IsHotRule reports whether the rule at ord is served from the hot tier.
// Every rule of an untiered list counts as hot (there is only one tier).
func (l *List) IsHotRule(ord int) bool {
	if l.hot == nil {
		return true
	}
	return ord >= 0 && ord < len(l.hot) && l.hot[ord]
}

// ColdAutomatonBytes returns the cold tier's serialized region (nil for
// untiered lists). Like AutomatonBytes, the slice aliases the automaton
// and must not be modified.
func (l *List) ColdAutomatonBytes() []byte {
	if l.cold == nil {
		return nil
	}
	return l.cold.Bytes()
}

// TierStats describes a list's tier geometry: automaton region sizes and
// HTTP-rule membership counts. For an untiered list everything is "hot".
type TierStats struct {
	HotBytes  int
	ColdBytes int
	HotRules  int
	ColdRules int
}

// TierStats reports the list's tier geometry. HotBytes is the memory the
// staged decision path touches when the hot tier concludes the verdict —
// the "hot working set" the compaction loop minimizes.
func (l *List) TierStats() TierStats {
	st := TierStats{HotBytes: len(l.auto.blob)}
	if l.cold == nil {
		for _, r := range l.rules {
			if r.IsHTTP() {
				st.HotRules++
			}
		}
		return st
	}
	st.ColdBytes = len(l.cold.blob)
	for ord, r := range l.rules {
		if !r.IsHTTP() {
			continue
		}
		if l.hot[ord] {
			st.HotRules++
		} else {
			st.ColdRules++
		}
	}
	return st
}
