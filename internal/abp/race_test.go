package abp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMatchSharedRules is the regression test for the lazy-
// compile data race: listgen shares *Rule values across revisions and
// MergeHistories shares them across histories, so two lists built from the
// same rules used to race on the first concurrent match. Run under
// `go test -race`.
func TestConcurrentMatchSharedRules(t *testing.T) {
	rules := benchRules(400)
	// Two lists sharing the same rule pointers — the shape MergeHistories
	// produces.
	a := NewList("a", rules)
	b := NewList("b", rules)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			elems := []*Element{{Tag: "div", ID: fmt.Sprintf("notice%d", w*2)}}
			for i := 0; i < 200; i++ {
				u := benchURLs[(w+i)%len(benchURLs)]
				q := Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
				da, _ := a.MatchRequest(q)
				db, _ := b.MatchRequest(q)
				if da != db {
					t.Errorf("lists sharing rules disagree: %v vs %v", da, db)
					return
				}
				a.MatchingHTTPRules(q)
				b.HiddenElements("site0002.com", elems)
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentLazyCompile exercises the fallback path for rules built
// without Parse (no eager Precompile): the first match compiles the
// matcher, and the atomic publication keeps simultaneous first matches
// race-free.
func TestConcurrentLazyCompile(t *testing.T) {
	rules := make([]*Rule, 50)
	for i := range rules {
		rules[i] = &Rule{
			Raw:          fmt.Sprintf("||lazy%02d.com^", i),
			Kind:         KindHTTPBlock,
			Pattern:      fmt.Sprintf("lazy%02d.com^", i),
			DomainAnchor: true,
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, r := range rules {
				q := Request{URL: fmt.Sprintf("http://lazy%02d.com/x.js", i), PageDomain: "p.com"}
				if !r.MatchRequest(q) {
					t.Errorf("worker %d: rule %d must match its own domain", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentHistoryListAt asserts the per-revision compile cache is
// safe under the sharded replay's access pattern — many workers resolving
// lists for overlapping months — and that it really compiles once: every
// caller sees the same *List for the same revision.
func TestConcurrentHistoryListAt(t *testing.T) {
	h := NewHistory("concurrent")
	rules := benchRules(120)
	base := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		h.Append(base.AddDate(0, i, 0), rules[:10*(i+1)])
	}

	lists := make([][]*List, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lists[w] = make([]*List, 12)
			for i := 0; i < 12; i++ {
				lists[w][i] = h.ListAt(base.AddDate(0, i, 0))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := 0; i < 12; i++ {
			if lists[w][i] != lists[0][i] {
				t.Fatalf("worker %d month %d got a distinct compile; cache must share", w, i)
			}
		}
	}
	if l := h.LatestList(); l != lists[0][11] {
		t.Fatal("LatestList must share the ListAt cache")
	}
}
