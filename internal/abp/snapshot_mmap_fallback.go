//go:build !unix

package abp

import "os"

// mapFile is the portable fallback for platforms without a usable mmap:
// the file is read into an ordinary heap buffer, which satisfies the same
// contract (an immutable byte view plus a release function) without the
// shared-page benefit.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
