package abp

import "strings"

// Request describes a single HTTP request as seen by the adblocker: the
// request URL, the resource type, and the domain of the page that issued it.
type Request struct {
	// URL is the absolute request URL.
	URL string
	// Type is the resource type (script, image, …). Empty means TypeOther.
	Type RequestType
	// PageDomain is the registrable domain of the page issuing the
	// request, used for $domain= and $third-party evaluation.
	PageDomain string
}

// Host returns the lower-cased host of the request URL, without port.
func (q Request) Host() string { return HostOf(q.URL) }

// IsThirdParty reports whether the request host falls outside the page's
// domain (the $third-party notion).
func (q Request) IsThirdParty() bool {
	h := q.Host()
	if h == "" || q.PageDomain == "" {
		return false
	}
	return !domainWithin(h, q.PageDomain)
}

// HostOf extracts the lower-cased host (without port or credentials) from an
// absolute URL. It returns "" when the URL has no authority component.
func HostOf(rawurl string) string {
	s := rawurl
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else if strings.HasPrefix(s, "//") {
		s = s[2:]
	} else {
		return ""
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// domainWithin reports whether host equals domain or is a subdomain of it.
func domainWithin(host, domain string) bool {
	host, domain = strings.ToLower(host), strings.ToLower(domain)
	return host == domain || strings.HasSuffix(host, "."+domain)
}

// MatchRequest reports whether the HTTP rule matches the request. It
// evaluates the $ options (type, third-party, domain) and then the URL
// pattern with its anchors. Element hiding rules never match requests.
func (r *Rule) MatchRequest(q Request) bool {
	if !r.IsHTTP() {
		return false
	}
	if q.Type == "" {
		q.Type = TypeOther
	}
	if len(r.Types) > 0 && !containsType(r.Types, q.Type) {
		return false
	}
	if containsType(r.NotTypes, q.Type) {
		return false
	}
	if r.ThirdParty != 0 {
		tp := q.IsThirdParty()
		if (r.ThirdParty > 0) != tp {
			return false
		}
	}
	if len(r.Domains) > 0 {
		ok := false
		for _, d := range r.Domains {
			if domainWithin(q.PageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.NotDomains {
		if domainWithin(q.PageDomain, d) {
			return false
		}
	}
	return r.matchURL(q.URL)
}

func containsType(ts []RequestType, t RequestType) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// urlMatcher holds the pre-lowered pattern for repeated matching.
type urlMatcher struct {
	pattern   string
	matchCase bool
}

func (r *Rule) compile() *urlMatcher {
	if r.matcher == nil {
		p := r.Pattern
		if !r.MatchCase {
			p = strings.ToLower(p)
		}
		r.matcher = &urlMatcher{pattern: p, matchCase: r.MatchCase}
	}
	return r.matcher
}

// matchURL applies the rule's URL pattern (with anchors) to an absolute URL.
func (r *Rule) matchURL(rawurl string) bool {
	m := r.compile()
	u := rawurl
	if !m.matchCase {
		u = strings.ToLower(u)
	}
	switch {
	case r.DomainAnchor:
		return matchDomainAnchored(m.pattern, u, r.EndAnchor)
	case r.StartAnchor:
		return matchHere(m.pattern, u, r.EndAnchor)
	default:
		for i := 0; i <= len(u); i++ {
			if matchHere(m.pattern, u[i:], r.EndAnchor) {
				return true
			}
		}
		return false
	}
}

// matchDomainAnchored implements "||": the pattern must match starting at
// the beginning of the URL's host or immediately after a dot inside it.
func matchDomainAnchored(pat, u string, endAnchor bool) bool {
	hostStart := 0
	if i := strings.Index(u, "://"); i >= 0 {
		hostStart = i + 3
	} else if strings.HasPrefix(u, "//") {
		hostStart = 2
	} else {
		return false
	}
	hostEnd := len(u)
	if i := strings.IndexAny(u[hostStart:], "/?#"); i >= 0 {
		hostEnd = hostStart + i
	}
	if matchHere(pat, u[hostStart:], endAnchor) {
		return true
	}
	for i := hostStart; i < hostEnd; i++ {
		if u[i] == '.' && matchHere(pat, u[i+1:], endAnchor) {
			return true
		}
	}
	return false
}

// isSeparator implements the Adblock Plus '^' placeholder: any character
// that is not a letter, a digit, or one of '_', '-', '.', '%'.
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_', c == '-', c == '.', c == '%':
		return false
	}
	return true
}

// matchHere matches pat against a prefix of s (the whole of s when endAnchor
// is set). '*' matches any run of characters; '^' matches one separator
// character or the end of the URL.
func matchHere(pat, s string, endAnchor bool) bool {
	for len(pat) > 0 {
		switch pat[0] {
		case '*':
			// Collapse consecutive stars, then try every split point.
			rest := strings.TrimLeft(pat, "*")
			if rest == "" {
				return true // trailing '*' absorbs the remainder
			}
			for k := 0; k <= len(s); k++ {
				if matchHere(rest, s[k:], endAnchor) {
					return true
				}
			}
			return false
		case '^':
			if len(s) > 0 && isSeparator(s[0]) {
				pat, s = pat[1:], s[1:]
				continue
			}
			if len(s) == 0 {
				// '^' may match the end of the URL.
				pat = pat[1:]
				continue
			}
			return false
		default:
			if len(s) > 0 && s[0] == pat[0] {
				pat, s = pat[1:], s[1:]
				continue
			}
			return false
		}
	}
	if endAnchor {
		return len(s) == 0
	}
	return true
}

// Keyword returns the longest run of "stable" literal characters in the
// rule's pattern, used by List to index rules so that only a few candidate
// rules are inspected per URL. Returns "" when no useful keyword exists.
func (r *Rule) Keyword() string {
	if !r.IsHTTP() {
		return ""
	}
	pat := strings.ToLower(r.Pattern)
	best, cur := "", strings.Builder{}
	flush := func() {
		if cur.Len() > len(best) {
			best = cur.String()
		}
		cur.Reset()
	}
	for i := 0; i < len(pat); i++ {
		c := pat[i]
		if c == '*' || c == '^' || c == '|' {
			flush()
			continue
		}
		cur.WriteByte(c)
	}
	flush()
	if len(best) < 3 {
		return ""
	}
	return best
}
