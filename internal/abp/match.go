package abp

import (
	"strings"
	"unsafe"
)

// Request describes a single HTTP request as seen by the adblocker: the
// request URL, the resource type, and the domain of the page that issued it.
type Request struct {
	// URL is the absolute request URL.
	URL string
	// Type is the resource type (script, image, …). Empty means TypeOther.
	Type RequestType
	// PageDomain is the registrable domain of the page issuing the
	// request, used for $domain= and $third-party evaluation.
	PageDomain string
}

// Host returns the lower-cased host of the request URL, without port.
func (q Request) Host() string { return HostOf(q.URL) }

// IsThirdParty reports whether the request host falls outside the page's
// domain (the $third-party notion).
func (q Request) IsThirdParty() bool {
	h := q.Host()
	if h == "" || q.PageDomain == "" {
		return false
	}
	return !domainWithin(h, q.PageDomain)
}

// HostOf extracts the lower-cased host (without port, credentials, or IPv6
// brackets) from an absolute URL. It returns "" when the URL has no
// authority component, and "" for an unterminated IPv6 literal.
func HostOf(rawurl string) string {
	s := rawurl
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else if strings.HasPrefix(s, "//") {
		s = s[2:]
	} else {
		return ""
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		s = s[i+1:]
	}
	if strings.HasPrefix(s, "[") {
		// IPv6 literal: the host is the bracketed section; a port can only
		// follow the closing bracket, so the first ':' must not cut it.
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return ""
		}
		return strings.ToLower(s[1:end])
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// domainWithin reports whether host equals domain or is a subdomain of it.
func domainWithin(host, domain string) bool {
	host, domain = strings.ToLower(host), strings.ToLower(domain)
	return host == domain || strings.HasSuffix(host, "."+domain)
}

// matchScratchCap sizes the matchCtx candidate scratch. Automaton probe
// stages rarely yield more than a handful of candidate rules per URL;
// anything beyond the scratch spills to a heap slice, trading one
// allocation for correctness on pathological inputs.
const matchScratchCap = 48

// matchCtx caches the per-request derived values — the lower-cased URL, the
// request host, the third-party verdict — that every candidate rule of a
// List lookup would otherwise recompute, plus the candidate-ordinal scratch
// the automaton probe stage writes into. It is built once per request on
// the caller's stack and never escapes a single call, which is what makes
// the no-match hot path allocation-free: the URL is lowered lazily (and
// in-place into lowBuf when it is ASCII), candidates live in the inline
// array, and nothing here reaches the heap unless an exotic input forces
// the spill or a non-ASCII lowering.
type matchCtx struct {
	q Request

	lowered  string // valid when lowState == lowIsString
	lowState uint8
	lowN     int // valid when lowState == lowIsBuf

	host     string
	hasHost  bool
	third    bool
	hasThird bool

	ncand int
	spill []uint32
	cand  [matchScratchCap]uint32

	lowBuf [192]byte
}

// low() states. The buffer-backed form is recorded as (lowIsBuf, lowN)
// rather than as a stored string: a string header pointing into lowBuf
// written back into the context would be a self-referential store, which
// escape analysis must treat as a heap store — it alone would move every
// context to the heap and cost the hot path its zero-alloc property. The
// view is rematerialized on each call instead (two instructions).
const (
	lowUnset uint8 = iota
	lowIsString
	lowIsBuf
)

// newMatchCtx normalizes the request. Lowering is deferred to the first
// rule that needs a case-insensitive view (see low): the automaton scans
// the raw URL through its case-folding byte classes, so a no-match lookup
// often never lowers at all.
func newMatchCtx(q Request) matchCtx {
	if q.Type == "" {
		q.Type = TypeOther
	}
	return matchCtx{q: q}
}

// low returns strings.ToLower(q.URL), computed at most once per context.
// ASCII URLs never allocate: an already-lower URL is returned as is, and
// one with upper-case letters is folded into the context's own buffer
// (falling back to an allocated copy only when it outgrows the buffer).
// The unsafe.String view is sound because it aliases the context, which
// outlives every use of the string — nothing retains it past the call.
func (c *matchCtx) low() string {
	switch c.lowState {
	case lowIsString:
		return c.lowered
	case lowIsBuf:
		return unsafe.String(&c.lowBuf[0], c.lowN)
	}
	s := c.q.URL
	hasUpper := false
	ascii := true
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x80 {
			ascii = false
			break
		}
		if 'A' <= b && b <= 'Z' {
			hasUpper = true
		}
	}
	switch {
	case !ascii:
		c.lowered = strings.ToLower(s)
	case !hasUpper:
		c.lowered = s
	case len(s) <= len(c.lowBuf):
		for i := 0; i < len(s); i++ {
			b := s[i]
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			c.lowBuf[i] = b
		}
		c.lowState = lowIsBuf
		c.lowN = len(s)
		return unsafe.String(&c.lowBuf[0], len(s))
	default:
		c.lowered = strings.ToLower(s)
	}
	c.lowState = lowIsString
	return c.lowered
}

// resetCands empties the candidate scratch before a fresh probe pass.
func (c *matchCtx) resetCands() {
	c.ncand = 0
	c.spill = c.spill[:0]
}

// pushCand records a candidate rule ordinal from the automaton scan,
// spilling past the inline scratch only on pathological inputs.
func (c *matchCtx) pushCand(ord uint32) {
	if c.ncand < matchScratchCap {
		c.cand[c.ncand] = ord
		c.ncand++
		return
	}
	c.spill = append(c.spill, ord)
}

// sortedCands returns the pushed candidates sorted ascending and
// deduplicated, i.e. in list insertion order — the order that makes
// candidate verification reproduce the linear reference scan. Candidate
// sets are small, so an in-place insertion sort beats sort.Slice and,
// unlike it, allocates nothing.
//
// The scratch is left describing exactly the returned set, so callers may
// keep pushing candidates afterwards (the tiered match path scans a
// second automaton into the same context) and sort again: the compacted
// run and the new pushes merge on the next call.
func (c *matchCtx) sortedCands() []uint32 {
	// The two storage cases stay in separate branches on purpose: the
	// compacted slice is written back into c.spill only where it provably
	// derives from c.spill itself. A single merged path would store a
	// maybe-aliases-c.cand slice into the context — a self-referential
	// store that escape analysis must send to the heap, costing the hot
	// path its zero-alloc property (see the low() comment).
	if len(c.spill) == 0 {
		out := sortDedupU32(c.cand[:c.ncand])
		c.ncand = len(out)
		return out
	}
	c.spill = append(c.spill, c.cand[:c.ncand]...)
	c.ncand = 0
	c.spill = sortDedupU32(c.spill)
	return c.spill
}

// sortDedupU32 sorts v ascending in place and compacts duplicates,
// returning the shortened prefix.
func sortDedupU32(v []uint32) []uint32 {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func (c *matchCtx) hostOf() string {
	if !c.hasHost {
		c.host = HostOf(c.q.URL)
		c.hasHost = true
	}
	return c.host
}

func (c *matchCtx) isThirdParty() bool {
	if !c.hasThird {
		h := c.hostOf()
		c.third = h != "" && c.q.PageDomain != "" && !domainWithin(h, c.q.PageDomain)
		c.hasThird = true
	}
	return c.third
}

// MatchRequest reports whether the HTTP rule matches the request. It
// evaluates the $ options (type, third-party, domain) and then the URL
// pattern with its anchors. Element hiding rules never match requests.
func (r *Rule) MatchRequest(q Request) bool {
	c := newMatchCtx(q)
	return r.matchCtx(&c)
}

// matchCtx is MatchRequest with the per-request work hoisted into c, so a
// List lookup shares it across every candidate rule.
func (r *Rule) matchCtx(c *matchCtx) bool {
	if !r.IsHTTP() {
		return false
	}
	if len(r.Types) > 0 && !containsType(r.Types, c.q.Type) {
		return false
	}
	if containsType(r.NotTypes, c.q.Type) {
		return false
	}
	if r.ThirdParty != 0 {
		if (r.ThirdParty > 0) != c.isThirdParty() {
			return false
		}
	}
	if len(r.Domains) > 0 {
		ok := false
		for _, d := range r.Domains {
			if domainWithin(c.q.PageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.NotDomains {
		if domainWithin(c.q.PageDomain, d) {
			return false
		}
	}
	return r.matchURLCtx(c)
}

func containsType(ts []RequestType, t RequestType) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// urlMatcher holds the pre-lowered pattern for repeated matching. Matchers
// are built eagerly by Parse and NewList (see Rule.Precompile) so that a
// compiled List is truly read-only for concurrent matchers.
type urlMatcher struct {
	pattern   string
	matchCase bool
}

// buildMatcher derives the matcher from the rule's pattern and options.
func (r *Rule) buildMatcher() *urlMatcher {
	p := r.Pattern
	if !r.MatchCase {
		p = strings.ToLower(p)
	}
	return &urlMatcher{pattern: p, matchCase: r.MatchCase}
}

// Precompile builds the rule's URL matcher eagerly. Parse calls it for
// every HTTP rule it returns and NewList calls it for every rule it
// indexes, so by the time a List is handed to concurrent readers no matcher
// state is ever written again. It is idempotent and cheap for non-HTTP
// rules.
func (r *Rule) Precompile() {
	if !r.IsHTTP() {
		return
	}
	if r.matcher.Load() == nil {
		r.matcher.Store(r.buildMatcher())
	}
}

// matcherRef returns the compiled matcher, building it on the fly for rules
// constructed by hand rather than through Parse/NewList. The fallback store
// is atomic, so even un-precompiled rules are safe (if slower) to match
// concurrently.
func (r *Rule) matcherRef() *urlMatcher {
	if m := r.matcher.Load(); m != nil {
		return m
	}
	m := r.buildMatcher()
	r.matcher.Store(m)
	return m
}

// matchURLCtx applies the rule's URL pattern (with anchors) to the request
// URL, reusing the context's pre-lowered copy for case-insensitive rules.
func (r *Rule) matchURLCtx(c *matchCtx) bool {
	m := r.matcherRef()
	u := c.q.URL
	if !m.matchCase {
		u = c.low()
	}
	switch {
	case r.DomainAnchor:
		return matchDomainAnchored(m.pattern, u, r.EndAnchor)
	case r.StartAnchor:
		return globMatch(m.pattern, u, r.EndAnchor, false)
	default:
		return globMatch(m.pattern, u, r.EndAnchor, true)
	}
}

// matchDomainAnchored implements "||": the pattern must match starting at
// the beginning of the URL's host or immediately after a dot inside it.
func matchDomainAnchored(pat, u string, endAnchor bool) bool {
	hostStart := 0
	if i := strings.Index(u, "://"); i >= 0 {
		hostStart = i + 3
	} else if strings.HasPrefix(u, "//") {
		hostStart = 2
	} else {
		return false
	}
	hostEnd := len(u)
	if i := strings.IndexAny(u[hostStart:], "/?#"); i >= 0 {
		hostEnd = hostStart + i
	}
	// RFC 3986 userinfo: "||" anchors to the host, which begins after the
	// last '@' of the authority. The cut is bounded to [hostStart, hostEnd)
	// so an '@' in the path, query, or fragment can never shift the anchor
	// (HostOf bounds its credential cut the same way). Without the cut,
	// "||host.com" both misses "http://user@host.com/" and false-matches
	// "http://host.com@evil.com/".
	if i := strings.LastIndexByte(u[hostStart:hostEnd], '@'); i >= 0 {
		hostStart += i + 1
	}
	if globMatch(pat, u[hostStart:], endAnchor, false) {
		return true
	}
	for i := hostStart; i < hostEnd; i++ {
		if u[i] == '.' && globMatch(pat, u[i+1:], endAnchor, false) {
			return true
		}
	}
	return false
}

// isSeparator implements the Adblock Plus '^' placeholder: any character
// that is not a letter, a digit, or one of '_', '-', '.', '%'.
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_', c == '-', c == '.', c == '%':
		return false
	}
	return true
}

// globMatch matches pat against a prefix of s (the whole of s when
// endAnchor is set). '*' matches any run of characters; '^' matches one
// separator character or, zero-width, the end of the URL. With floating
// set, the pattern may begin at any offset of s (a virtual leading '*').
//
// The matcher is an iterative two-pointer scan: it advances greedily and on
// a mismatch backtracks to just after the most recent '*', restarting that
// star's span one byte further. Remembering only the latest star is
// sufficient because extending an earlier star can always be re-expressed
// as extending the latest one, so the walk is O(len(pat)·len(s)) in the
// worst case instead of the exponential recursion it replaces (consecutive
// stars collapse for free: each one just moves the resume point).
func globMatch(pat, s string, endAnchor, floating bool) bool {
	pi, si := 0, 0
	// starPi is the pattern index just after the last '*' seen; starSi the
	// next input offset to retry it from. floating seeds a virtual star
	// before the pattern, which is exactly "try every start offset".
	starPi, starSi := -1, 0
	if floating {
		starPi, starSi = 0, 0
	}
	for {
		if pi == len(pat) {
			if !endAnchor || si == len(s) {
				return true
			}
			// Anchored to the end with input left over: only a wider star
			// span can consume the remainder.
		} else {
			switch c := pat[pi]; c {
			case '*':
				pi++
				starPi, starSi = pi, si
				continue
			case '^':
				if si < len(s) && isSeparator(s[si]) {
					pi++
					si++
					continue
				}
				if si == len(s) {
					// '^' may match the end of the URL (zero-width).
					pi++
					continue
				}
			default:
				if si < len(s) && s[si] == c {
					pi++
					si++
					continue
				}
			}
		}
		// Mismatch: backtrack to the last star, if it can still stretch.
		if starPi < 0 || starSi >= len(s) {
			return false
		}
		starSi++
		pi, si = starPi, starSi
	}
}

// keywordChar reports whether c can appear inside an index keyword: the
// lower-case alphanumerics plus '%'. Keyword extraction and URL
// tokenization share this class; that shared alphabet is what makes the
// token-hash lookup sound (see Rule.Keyword).
func keywordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '%'
}

// Keyword returns the longest token-safe keyword in the rule's pattern, or
// "" when none exists. List buckets rules by this keyword and looks buckets
// up by the URL's own tokens, so a keyword is only usable when every URL the
// rule matches is guaranteed to contain it as a complete token: the run must
// be delimited on both sides, inside the pattern, by something that can
// never be a keyword character in the matched URL — a literal non-keyword
// character, a '^' separator, or an anchored pattern edge. Runs touching a
// '*' or an unanchored pattern edge are skipped (the URL could extend them),
// which is exactly the scheme production adblockers use.
func (r *Rule) Keyword() string {
	if !r.IsHTTP() {
		return ""
	}
	pat := strings.ToLower(r.Pattern)
	best := ""
	for i := 0; i < len(pat); {
		if !keywordChar(pat[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(pat) && keywordChar(pat[j]) {
			j++
		}
		leftOK := i > 0 && pat[i-1] != '*' ||
			i == 0 && (r.StartAnchor || r.DomainAnchor)
		rightOK := j < len(pat) && pat[j] != '*' ||
			j == len(pat) && r.EndAnchor
		if leftOK && rightOK && j-i >= 3 && j-i > len(best) {
			best = pat[i:j]
		}
		i = j
	}
	return best
}
