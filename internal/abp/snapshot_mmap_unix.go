//go:build unix

package abp

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the view plus its unmap
// function. The mapping is MAP_PRIVATE|PROT_READ: replicas loading the
// same snapshot file share its physical pages, and nothing this package
// does can write through the view. Empty files return a nil view (no
// zero-length mmap).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("abp: %s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("abp: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
