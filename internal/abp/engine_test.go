package abp

import (
	"fmt"
	"testing"
)

// Edge cases pinned down while replacing the recursive matcher with the
// iterative glob and routing lookups through the keyword index.

func TestCaretZeroWidthAtEndWithMatchCase(t *testing.T) {
	r := mustParse(t, "|http://x.com/Path^$match-case")
	if !r.MatchRequest(req("http://x.com/Path", "x.com", TypeScript)) {
		t.Error("'^' must match zero-width at end of URL")
	}
	if !r.MatchRequest(req("http://x.com/Path/", "x.com", TypeScript)) {
		t.Error("'^' must still match a real separator")
	}
	if r.MatchRequest(req("http://x.com/path", "x.com", TypeScript)) {
		t.Error("$match-case must reject a case-mangled path")
	}
	if r.MatchRequest(req("http://x.com/Pathology", "x.com", TypeScript)) {
		t.Error("'^' must not match a letter")
	}
}

func TestConsecutiveStarCollapse(t *testing.T) {
	r := mustParse(t, "/a**b.js")
	if !r.MatchRequest(req("http://x.com/a-long-bridge-b.js", "x.com", TypeScript)) {
		t.Error("consecutive stars must behave like one star")
	}
	if !r.MatchRequest(req("http://x.com/ab.js", "x.com", TypeScript)) {
		t.Error("consecutive stars must match the empty string")
	}
	tripled := mustParse(t, "|http://x.com/***end|")
	if !tripled.MatchRequest(req("http://x.com/the-end", "x.com", TypeScript)) {
		t.Error("star runs inside anchors must collapse too")
	}
	if tripled.MatchRequest(req("http://x.com/the-end?x", "x.com", TypeScript)) {
		t.Error("end anchor must still bind after a star run")
	}
}

func TestDomainAnchorOnSchemeRelativeURL(t *testing.T) {
	r := mustParse(t, "||cdn.com^")
	if !r.MatchRequest(req("//cdn.com/x.js", "page.com", TypeScript)) {
		t.Error("'||' must anchor immediately after a scheme-relative '//'")
	}
	if !r.MatchRequest(req("//sub.cdn.com/x.js", "page.com", TypeScript)) {
		t.Error("'||' must match subdomains of scheme-relative URLs")
	}
	if r.MatchRequest(req("//notcdn.com/x.js", "page.com", TypeScript)) {
		t.Error("'||' must respect the domain boundary on scheme-relative URLs")
	}
}

func TestExceptionBeatsBlockThroughIndex(t *testing.T) {
	// The exception and the block live in different keyword buckets; the
	// indexed path must still give the exception precedence, exactly like
	// the linear reference.
	l := buildList(t, "test",
		"/ads.js?",
		"||numerama.com^",
		"@@||numerama.com/ads.js",
	)
	q := req("http://numerama.com/ads.js?v=2", "numerama.com", TypeScript)
	dec, rule := l.MatchRequest(q)
	if dec != Allowed {
		t.Fatalf("indexed decision = %v, want Allowed", dec)
	}
	if rule == nil || !rule.IsException() {
		t.Fatalf("winning rule = %v, want the exception", rule)
	}
	ldec, lrule := l.MatchRequestLinear(q)
	if ldec != dec || lrule != rule {
		t.Fatalf("indexed (%v, %v) != linear (%v, %v)", dec, rule, ldec, lrule)
	}
}

// TestIndexedMatchesEqualLinearOverBenchRules is the package-local
// differential test: over a large generated rule set and a URL population
// hitting every bucket shape, all three probe stages — the compiled
// automaton (production), the token-hash keyword index (fallback), and the
// index-free linear scan (reference) — must return the exact same answers:
// same decision, same winning rule, same all-matches slice in the same
// order.
func TestIndexedMatchesEqualLinearOverBenchRules(t *testing.T) {
	l := NewList("diff", benchRules(1500))
	var urls []string
	for i := 0; i < 300; i++ {
		urls = append(urls,
			fmt.Sprintf("http://vendor%04d.com/score.js", i),
			fmt.Sprintf("http://site%04d.com/ads.js", i),
			fmt.Sprintf("http://benign%04d.com/ads.js", i),
			fmt.Sprintf("http://cdn.net/detect%04d-v2.js", i),
			fmt.Sprintf("http://other%04d.net/app.js", i),
		)
	}
	pages := []string{"page.com", "site0004.com", "site0123.com"}
	types := []RequestType{TypeScript, TypeImage, TypeOther}
	for _, u := range urls {
		for _, p := range pages {
			for _, typ := range types {
				q := Request{URL: u, Type: typ, PageDomain: p}
				got := l.MatchingHTTPRules(q)
				want := l.MatchingHTTPRulesLinear(q)
				if len(got) != len(want) {
					t.Fatalf("%q on %q (%s): indexed %d rules, linear %d",
						u, p, typ, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%q on %q (%s): rule %d differs: %q vs %q",
							u, p, typ, i, got[i].Raw, want[i].Raw)
					}
				}
				tok := l.MatchingHTTPRulesTokenIndex(q)
				if len(tok) != len(want) {
					t.Fatalf("%q on %q (%s): token index %d rules, linear %d",
						u, p, typ, len(tok), len(want))
				}
				for i := range tok {
					if tok[i] != want[i] {
						t.Fatalf("%q on %q (%s): token-index rule %d differs: %q vs %q",
							u, p, typ, i, tok[i].Raw, want[i].Raw)
					}
				}
				gd, gr := l.MatchRequest(q)
				td, tr := l.MatchRequestTokenIndex(q)
				ld, lr := l.MatchRequestLinear(q)
				if gd != ld || gr != lr {
					t.Fatalf("%q on %q (%s): MatchRequest automaton (%v) != linear (%v)",
						u, p, typ, gd, ld)
				}
				if td != ld || tr != lr {
					t.Fatalf("%q on %q (%s): MatchRequest token index (%v) != linear (%v)",
						u, p, typ, td, ld)
				}
			}
		}
	}
}
