package abp

import (
	"encoding/binary"
	"fmt"
	"strings"
	"unsafe"

	"adwars/internal/artifact"
)

// This file is the compiled multi-pattern match core: an Aho–Corasick
// automaton over rule pattern substrings, laid out as a double-array trie
// in ONE contiguous little-endian []byte region. The region is the unit of
// serialization — it goes into the lists snapshot behind the artifact
// integrity trailer verbatim and is reattached on load (by mmap or plain
// read) without rebuilding, so startup cost for a compiled list is O(map)
// plus validation instead of O(rules) index construction.
//
// Role in matching: the automaton replaces the token-hash keyword index as
// the probe stage. Scanning the request URL once (O(len) amortized, byte
// class table folds ASCII case so the raw URL is scanned — no lower-cased
// copy is ever allocated on this path) yields the ordinals of every rule
// whose automaton keyword occurs in the URL. Those ordinals, plus the few
// keyword-less generic rules, are a superset of all rules that can match;
// each candidate is then verified with the full rule matcher in insertion
// order, which makes the automaton path's answers — decision, winning
// rule, and all-matches set — identical to the linear reference scan (and
// therefore to the token index; see the differential tests and
// FuzzMatchDifferential).
//
// Memory layout (all integers little-endian, fixed width):
//
//	off 0   magic "AWDA" (4 bytes)
//	off 4   u32 version (currently 1)
//	off 8   u32 numSlots       double-array length
//	off 12  u32 root           root state's slot (always 0)
//	off 16  u32 numOutputs     total output-list entries
//	off 20  u32 numGeneric     rules without a usable keyword
//	off 24  u32 numRules       rule count the output ordinals index
//	off 28  u32 reserved (0)
//	off 32  u64 rulesCRC       CRC-64 of the canonical rule lines
//	off 40  u64 reserved (0)   (keeps the arrays 8-byte aligned)
//	off 48  base    [numSlots]u32
//	        check   [numSlots]u32   (0xFFFFFFFF = empty slot)
//	        fail    [numSlots]u32
//	        outIdx  [numSlots+1]u32 (prefix offsets into outputs)
//	        outputs [numOutputs]u32 (rule ordinals)
//	        generic [numGeneric]u32 (rule ordinals, ascending)
//
// rulesCRC binds a serialized automaton to the exact rule set it was
// compiled from: a snapshot whose JSON rules were edited without
// recompiling the section is refused at load instead of silently matching
// against stale states.
const (
	acMagic   = "AWDA"
	acVersion = 1

	// acAlpha is the scan alphabet: class 0 is every byte that can never
	// appear in a keyword (resets the scan to the root), classes 1..37 are
	// the keyword characters a-z, 0-9, '%' (upper-case ASCII folds onto
	// the lower-case class, so the automaton scans raw URLs).
	acAlpha = 38

	// acMinKeyword matches the token index's floor: shorter runs are too
	// unselective to be worth automaton states.
	acMinKeyword = 3

	acHeaderSize = 48
	acEmptySlot  = ^uint32(0)
)

// acClass maps a URL byte to its scan symbol. Upper- and lower-case ASCII
// letters share a class, which is what lets the scan run over the raw
// request URL while rule keywords are stored lower-cased.
var acClass [256]byte

func init() {
	for c := 'a'; c <= 'z'; c++ {
		acClass[c] = byte(c-'a') + 1
		acClass[c-'a'+'A'] = byte(c-'a') + 1
	}
	for c := '0'; c <= '9'; c++ {
		acClass[c] = byte(c-'0') + 27
	}
	acClass['%'] = 37
}

// hostLittleEndian reports whether native u32 loads read the serialized
// little-endian arrays correctly, enabling the zero-copy view.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// automaton is the decoded view over one contiguous region. The u32
// slices alias blob when the host is little-endian and the region is
// 4-byte aligned (always true for the in-memory builder and the mmap
// path, whose sections are 8-aligned in the file); otherwise they are
// decoded copies, so matching is correct on any host.
type automaton struct {
	blob []byte

	base    []uint32
	check   []uint32
	fail    []uint32
	outIdx  []uint32
	outputs []uint32
	generic []uint32

	numSlots uint32
	root     uint32
	numRules uint32
	rulesCRC uint64
}

// Bytes returns the automaton's contiguous serialized region. The slice
// aliases the automaton's backing memory and must not be modified.
func (a *automaton) Bytes() []byte { return a.blob }

// AutomatonKeyword returns the longest run of keyword characters in the
// rule's pattern (lower-cased, minimum length 3), or "" when none exists.
// Unlike Keyword, the run needs no token boundaries: every such run is a
// contiguous literal span of the pattern, so any URL the rule matches must
// contain it as a substring — exactly the occurrence an Aho–Corasick scan
// detects. That drains the token index's generic bucket: rules like
// "/detect123*.js", whose best run touches a '*', are indexable here.
func (r *Rule) AutomatonKeyword() string {
	if !r.IsHTTP() {
		return ""
	}
	pat := strings.ToLower(r.Pattern)
	best := ""
	for i := 0; i < len(pat); {
		if !keywordChar(pat[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(pat) && keywordChar(pat[j]) {
			j++
		}
		if j-i >= acMinKeyword && j-i > len(best) {
			best = pat[i:j]
		}
		i = j
	}
	return best
}

// rulesChecksum is the canonical CRC-64 over a compiled rule set: the raw
// lines in ordinal order, newline-terminated. It is stored inside the
// serialized automaton and re-derived at load to refuse stale sections.
func rulesChecksum(rules []*Rule) uint64 {
	var buf []byte
	for _, r := range rules {
		buf = append(buf, r.Raw...)
		buf = append(buf, '\n')
	}
	return artifact.Checksum(buf)
}

// acTrieNode is a build-time trie node; children are indexed by scan
// class 1..37 (class 0 never appears in a keyword).
type acTrieNode struct {
	child [acAlpha]int32 // -1 = absent; index 0 unused
	fail  int32
	out   []uint32
}

// buildAutomaton compiles the automaton for a rule set and returns its
// decoded form. The build is deterministic — trie insertion in ordinal
// order, BFS in symbol order, first-fit slot placement — so the same rule
// set always serializes to the same bytes (snapshot versions are content
// CRCs; a rebuild must not change them).
func buildAutomaton(rules []*Rule, rulesCRC uint64) *automaton {
	return buildAutomatonMember(rules, rulesCRC, nil)
}

// buildAutomatonMember compiles an automaton over a subset of the rule
// set: rules whose ordinal is excluded by member contribute no keyword and
// no generic entry — they are invisible to this automaton, not demoted to
// its generic bucket. Ordinals in the output arrays are still indexes into
// the FULL rule set (and the header carries the full set's count and CRC),
// which is what lets a hot and a cold automaton compiled from the same
// list share one rules array, one checksum, and the untiered validation
// path. A nil member includes every rule (the untiered build).
func buildAutomatonMember(rules []*Rule, rulesCRC uint64, member []bool) *automaton {
	type kw struct {
		s   string
		ord uint32
	}
	var kws []kw
	var generic []uint32
	for ord, r := range rules {
		if !r.IsHTTP() {
			continue
		}
		if member != nil && !member[ord] {
			continue
		}
		if s := r.AutomatonKeyword(); s != "" {
			kws = append(kws, kw{s, uint32(ord)})
		} else {
			generic = append(generic, uint32(ord))
		}
	}

	// Trie construction.
	nodes := []acTrieNode{newTrieNode()}
	for _, k := range kws {
		cur := int32(0)
		for i := 0; i < len(k.s); i++ {
			c := acClass[k.s[i]]
			if nodes[cur].child[c] < 0 {
				nodes = append(nodes, newTrieNode())
				nodes[cur].child[c] = int32(len(nodes) - 1)
			}
			cur = nodes[cur].child[c]
		}
		nodes[cur].out = append(nodes[cur].out, k.ord)
	}

	// BFS: fail links, then outputs merged down the fail chain so the
	// scan never walks fail links to collect outputs.
	queue := make([]int32, 0, len(nodes))
	for c := 1; c < acAlpha; c++ {
		if ch := nodes[0].child[c]; ch >= 0 {
			nodes[ch].fail = 0
			queue = append(queue, ch)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		for c := 1; c < acAlpha; c++ {
			ch := nodes[n].child[c]
			if ch < 0 {
				continue
			}
			f := nodes[n].fail
			for f != 0 && nodes[f].child[c] < 0 {
				f = nodes[f].fail
			}
			if t := nodes[f].child[c]; t >= 0 && t != ch {
				nodes[ch].fail = t
			} else {
				nodes[ch].fail = 0
			}
			queue = append(queue, ch)
		}
		if f := nodes[n].fail; len(nodes[f].out) > 0 {
			nodes[n].out = append(nodes[n].out, nodes[f].out...)
		}
	}

	// Double-array placement: BFS order, first-fit base search. slot[i]
	// is trie node i's slot; root is slot 0.
	slot := make([]int32, len(nodes))
	baseOf := make([]int32, len(nodes))
	used := []bool{true} // slot 0 = root
	minFree := 1
	order := append([]int32{0}, queue...)
	for _, n := range order {
		placeNode(nodes, n, slot, baseOf, &used, &minFree)
	}

	numSlots := len(used)
	base := make([]uint32, numSlots)
	check := make([]uint32, numSlots)
	fail := make([]uint32, numSlots)
	outCount := make([]uint32, numSlots)
	for i := range check {
		check[i] = acEmptySlot
	}
	check[0] = 0
	fail[0] = 0
	totalOut := 0
	for n := range nodes {
		s := slot[n]
		base[s] = uint32(baseOf[n])
		fail[s] = uint32(slot[nodes[n].fail])
		outCount[s] = uint32(len(nodes[n].out))
		totalOut += len(nodes[n].out)
		for c := 1; c < acAlpha; c++ {
			if ch := nodes[n].child[c]; ch >= 0 {
				check[slot[ch]] = uint32(s)
			}
		}
	}

	// Serialize into the contiguous little-endian region.
	size := acHeaderSize + 4*(3*numSlots+(numSlots+1)+totalOut+len(generic))
	blob := alignedBytes(size)
	copy(blob, acMagic)
	le := binary.LittleEndian
	le.PutUint32(blob[4:], acVersion)
	le.PutUint32(blob[8:], uint32(numSlots))
	le.PutUint32(blob[12:], 0) // root
	le.PutUint32(blob[16:], uint32(totalOut))
	le.PutUint32(blob[20:], uint32(len(generic)))
	le.PutUint32(blob[24:], uint32(len(rules)))
	le.PutUint64(blob[32:], rulesCRC)
	off := acHeaderSize
	put := func(v uint32) {
		le.PutUint32(blob[off:], v)
		off += 4
	}
	for _, v := range base {
		put(v)
	}
	for _, v := range check {
		put(v)
	}
	for _, v := range fail {
		put(v)
	}
	// outIdx prefix sums, then outputs grouped by slot in slot order.
	sum := uint32(0)
	for s := 0; s < numSlots; s++ {
		put(sum)
		sum += outCount[s]
	}
	put(sum)
	outBySlot := make([][]uint32, numSlots)
	for n := range nodes {
		outBySlot[slot[n]] = nodes[n].out
	}
	for _, outs := range outBySlot {
		for _, o := range outs {
			put(o)
		}
	}
	for _, g := range generic {
		put(g)
	}

	a, err := openAutomaton(blob, len(rules), rulesCRC)
	if err != nil {
		panic(fmt.Sprintf("abp: internal: freshly built automaton failed validation: %v", err))
	}
	return a
}

// placeNode finds a first-fit base for one trie node's children and
// claims their slots.
func placeNode(nodes []acTrieNode, n int32, slot, baseOf []int32, used *[]bool, minFree *int) {
	first := -1
	for c := 1; c < acAlpha; c++ {
		if nodes[n].child[c] >= 0 {
			first = c
			break
		}
	}
	if first < 0 {
		baseOf[n] = 0
		return
	}
	u := *used
	for pos := *minFree; ; pos++ {
		for pos < len(u) && u[pos] {
			pos++
		}
		b := pos - first
		if b < 0 {
			continue
		}
		ok := true
		for c := first; c < acAlpha; c++ {
			if nodes[n].child[c] < 0 {
				continue
			}
			if s := b + c; s < len(u) && u[s] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for c := first; c < acAlpha; c++ {
			ch := nodes[n].child[c]
			if ch < 0 {
				continue
			}
			s := b + c
			for s >= len(u) {
				u = append(u, false)
			}
			u[s] = true
			slot[ch] = int32(s)
		}
		baseOf[n] = int32(b)
		*used = u
		for *minFree < len(u) && u[*minFree] {
			*minFree++
		}
		return
	}
}

func newTrieNode() acTrieNode {
	var n acTrieNode
	for i := range n.child {
		n.child[i] = -1
	}
	return n
}

// alignedBytes allocates an 8-byte-aligned byte slice so the in-memory
// build always qualifies for the zero-copy u32 view.
func alignedBytes(n int) []byte {
	w := make([]uint64, (n+7)/8)
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

// u32view reinterprets a little-endian u32 array. Zero-copy when the host
// is little-endian and the bytes are 4-aligned; decoded copy otherwise.
func u32view(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// openAutomaton decodes and validates a serialized region against the
// rule set it will index. Validation is what makes scanning a hostile or
// stale blob safe: every structural invariant the scan loop relies on —
// in-bounds bases, parents, fail links that strictly decrease depth
// (termination), monotone output offsets, ordinals inside the rule set —
// is checked once here, so the hot path needs no defensive code beyond
// its natural bounds checks. Errors wrap artifact.ErrCorrupt: a blob that
// fails here is a damaged or mismatched artifact, not a format novelty.
func openAutomaton(blob []byte, wantRules int, wantCRC uint64) (*automaton, error) {
	corrupt := func(format string, args ...any) error {
		return artifact.Corruptf("automaton-invalid", format, args...)
	}
	if len(blob) < acHeaderSize {
		return nil, corrupt("region too short: %d bytes", len(blob))
	}
	if string(blob[:4]) != acMagic {
		return nil, corrupt("bad magic %q", blob[:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(blob[4:]); v != acVersion {
		return nil, corrupt("unsupported automaton version %d", v)
	}
	numSlots := le.Uint32(blob[8:])
	root := le.Uint32(blob[12:])
	numOut := le.Uint32(blob[16:])
	numGen := le.Uint32(blob[20:])
	numRules := le.Uint32(blob[24:])
	rulesCRC := le.Uint64(blob[32:])
	if numSlots == 0 || root != 0 {
		return nil, corrupt("bad geometry: slots=%d root=%d", numSlots, root)
	}
	want := uint64(acHeaderSize) + 4*(3*uint64(numSlots)+uint64(numSlots)+1+uint64(numOut)+uint64(numGen))
	if uint64(len(blob)) != want {
		return nil, corrupt("region is %d bytes, header frames %d", len(blob), want)
	}
	if int(numRules) != wantRules {
		return nil, corrupt("compiled for %d rules, list has %d", numRules, wantRules)
	}
	if rulesCRC != wantCRC {
		return nil, corrupt("compiled against different rules (crc %016x, list %016x)", rulesCRC, wantCRC)
	}

	a := &automaton{
		blob:     blob,
		numSlots: numSlots,
		root:     root,
		numRules: numRules,
		rulesCRC: rulesCRC,
	}
	off := uint64(acHeaderSize)
	next := func(n uint64) []uint32 {
		v := u32view(blob[off : off+4*n])
		off += 4 * n
		return v
	}
	a.base = next(uint64(numSlots))
	a.check = next(uint64(numSlots))
	a.fail = next(uint64(numSlots))
	a.outIdx = next(uint64(numSlots) + 1)
	a.outputs = next(uint64(numOut))
	a.generic = next(uint64(numGen))

	if a.check[root] != root || a.fail[root] != root || a.base[root] >= numSlots+acAlpha {
		return nil, corrupt("malformed root slot")
	}
	// Depth-validate occupied slots: parents in bounds and consistent with
	// their base, fail links pointing strictly shallower. depth doubles as
	// the cycle detector (unresolvable parent chains never terminate in a
	// well-formed trie and are bounded here by numSlots).
	const depthUnknown = ^uint32(0)
	depth := make([]uint32, numSlots)
	for i := range depth {
		depth[i] = depthUnknown
	}
	depth[root] = 0
	var chain []uint32
	for s := uint32(0); s < numSlots; s++ {
		if a.check[s] == acEmptySlot || depth[s] != depthUnknown {
			continue
		}
		chain = chain[:0]
		t := s
		for depth[t] == depthUnknown {
			p := a.check[t]
			if p >= numSlots || a.check[p] == acEmptySlot {
				return nil, corrupt("slot %d has invalid parent %d", t, p)
			}
			sym := int64(t) - int64(a.base[p])
			if sym < 1 || sym >= acAlpha {
				return nil, corrupt("slot %d inconsistent with parent %d base %d", t, p, a.base[p])
			}
			if uint32(len(chain)) > numSlots {
				return nil, corrupt("parent cycle at slot %d", s)
			}
			chain = append(chain, t)
			t = p
		}
		d := depth[t]
		for i := len(chain) - 1; i >= 0; i-- {
			d++
			depth[chain[i]] = d
		}
	}
	for s := uint32(0); s < numSlots; s++ {
		if a.check[s] == acEmptySlot {
			if a.outIdx[s+1] != a.outIdx[s] {
				return nil, corrupt("empty slot %d carries outputs", s)
			}
			continue
		}
		if a.base[s] >= numSlots+acAlpha {
			return nil, corrupt("slot %d base %d out of range", s, a.base[s])
		}
		f := a.fail[s]
		if f >= numSlots || a.check[f] == acEmptySlot {
			return nil, corrupt("slot %d fail %d invalid", s, f)
		}
		if s != root && depth[f] >= depth[s] {
			return nil, corrupt("slot %d fail %d does not decrease depth", s, f)
		}
		if a.outIdx[s+1] < a.outIdx[s] {
			return nil, corrupt("output index not monotone at slot %d", s)
		}
	}
	if a.outIdx[numSlots] != numOut {
		return nil, corrupt("output index frames %d entries, header says %d", a.outIdx[numSlots], numOut)
	}
	for _, o := range a.outputs {
		if o >= numRules {
			return nil, corrupt("output ordinal %d out of range (%d rules)", o, numRules)
		}
	}
	for i, g := range a.generic {
		if g >= numRules {
			return nil, corrupt("generic ordinal %d out of range (%d rules)", g, numRules)
		}
		if i > 0 && a.generic[i-1] >= g {
			return nil, corrupt("generic ordinals not ascending at %d", i)
		}
	}
	return a, nil
}

// collect scans the request URL once and fills the context's candidate
// scratch with the ordinals of every rule whose keyword occurs in the URL
// plus the generic (keyword-less) rules, sorted ascending and deduplicated
// — i.e. insertion order, which is what makes candidate verification
// reproduce the linear scan exactly. It reports ok=false for URLs with
// non-ASCII bytes: Unicode case folding can materialize ASCII letters the
// raw-byte scan cannot see (e.g. the Kelvin sign lowers to 'k'), so those
// rare URLs take the token-index path, which matches on the lower-cased
// copy. The common path allocates nothing: the scratch is part of the
// stack-allocated matchCtx and only overflows into a heap spill beyond
// matchScratchCap candidates.
func (a *automaton) collect(c *matchCtx) (cands []uint32, ok bool) {
	c.resetCands()
	if !a.scanInto(c) {
		return nil, false
	}
	return c.sortedCands(), true
}

// scanInto is collect without the reset and the sort: it pushes this
// automaton's candidates (keyword hits plus its generic ordinals) into
// whatever the context already holds. The tiered match path scans the hot
// and cold automata into one scratch and sorts once, so candidate
// verification still walks the combined set in insertion order.
func (a *automaton) scanInto(c *matchCtx) (ok bool) {
	s := c.q.URL
	st := a.root
	base, check, fail := a.base, a.check, a.fail
	outIdx := a.outIdx
	numSlots := uint32(len(check))
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x80 {
			return false
		}
		cls := uint32(acClass[b])
		if cls == 0 {
			st = a.root
			continue
		}
		for {
			t := base[st] + cls
			if t < numSlots && check[t] == st {
				st = t
				break
			}
			if st == a.root {
				break
			}
			st = fail[st]
		}
		if lo, hi := outIdx[st], outIdx[st+1]; hi > lo {
			for _, ord := range a.outputs[lo:hi] {
				c.pushCand(ord)
			}
		}
	}
	for _, g := range a.generic {
		c.pushCand(g)
	}
	return true
}
