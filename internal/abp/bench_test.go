package abp

import (
	"fmt"
	"strings"
	"testing"
)

// benchRules builds a realistic mixed rule set of n rules.
func benchRules(n int) []*Rule {
	var rules []*Rule
	for i := 0; i < n; i++ {
		var line string
		switch i % 5 {
		case 0:
			line = fmt.Sprintf("||vendor%04d.com^$third-party", i)
		case 1:
			line = fmt.Sprintf("||site%04d.com/ads.js", i)
		case 2:
			line = fmt.Sprintf("site%04d.com###notice%d", i, i)
		case 3:
			line = fmt.Sprintf("@@||benign%04d.com/ads.js", i)
		default:
			line = fmt.Sprintf("/detect%04d*.js$script,domain=site%04d.com", i, i)
		}
		r, err := Parse(line)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	return rules
}

var benchURLs = []string{
	"http://vendor0005.com/score.js",
	"http://site0001.com/ads.js",
	"http://cdn.other.net/lib/jquery.js",
	"http://img.other.net/banner.png",
	"http://site0123.com/js/app.js?v=9",
}

// BenchmarkListMatchIndexed measures request matching with the keyword
// index (the production path).
func BenchmarkListMatchIndexed(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchRequest(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
}

// BenchmarkListMatchLinear is the ablation baseline: match every rule
// without the keyword index. The index should win by a wide margin.
func BenchmarkListMatchLinear(b *testing.B) {
	rules := benchRules(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Request{URL: benchURLs[i%len(benchURLs)], Type: TypeScript, PageDomain: "page.com"}
		for _, r := range rules {
			if r.IsHTTP() && r.MatchRequest(q) {
				break
			}
		}
	}
}

// BenchmarkListCompile measures NewList over a 2000-rule set: parsing is
// excluded, so this is index construction plus matcher precompilation —
// the cost the per-revision cache pays once per revision.
func BenchmarkListCompile(b *testing.B) {
	rules := benchRules(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := NewList("bench", rules); l.Len() == 0 {
			b.Fatal("empty list")
		}
	}
}

// BenchmarkMatchingHTTPRulesIndexed measures the all-matches lookup through
// the keyword index (the replay's per-request path).
func BenchmarkMatchingHTTPRulesIndexed(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchingHTTPRules(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
}

// BenchmarkMatchingHTTPRulesLinear is its full-scan ablation baseline.
func BenchmarkMatchingHTTPRulesLinear(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchingHTTPRulesLinear(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
}

// BenchmarkGlobPathological pins the wildcard fix: a star-heavy pattern
// against a long non-matching URL was exponential under the recursive
// matcher and is linear-ish under the two-pointer glob.
func BenchmarkGlobPathological(b *testing.B) {
	r, err := Parse("/a*a*a*a*a*a*a*a*a*b")
	if err != nil {
		b.Fatal(err)
	}
	u := "http://x.com/" + strings.Repeat("a", 512) + "c"
	q := Request{URL: u, Type: TypeScript, PageDomain: "x.com"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.MatchRequest(q) {
			b.Fatal("pathological pattern must not match")
		}
	}
}

// BenchmarkParseRule measures single-rule parsing.
func BenchmarkParseRule(b *testing.B) {
	lines := []string{
		"||pagefair.com^$third-party",
		"smashboards.com###noticeMain",
		"/example.js$script,domain=example2.com",
		"@@||numerama.com/ads.js",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElementHiding measures element hiding over a 50-element DOM.
func BenchmarkElementHiding(b *testing.B) {
	list := NewList("bench", benchRules(500))
	elems := make([]*Element, 50)
	for i := range elems {
		elems[i] = &Element{Tag: "div", ID: fmt.Sprintf("el%d", i), Classes: []string{"c"}}
	}
	elems[10].ID = "notice2"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list.HiddenElements("site0002.com", elems)
	}
}

// BenchmarkHistoryAt measures revision lookup in a 500-revision history.
func BenchmarkHistoryAt(b *testing.B) {
	h := NewHistory("bench")
	rules := benchRules(100)
	for i := 0; i < 500; i++ {
		h.Append(day(2012, 1, 1).AddDate(0, 0, i*3), rules[:1+(i%99)])
	}
	when := day(2014, 6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.At(when); !ok {
			b.Fatal("missing revision")
		}
	}
}
