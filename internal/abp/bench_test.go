package abp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// benchRules builds a realistic mixed rule set of n rules.
func benchRules(n int) []*Rule {
	var rules []*Rule
	for i := 0; i < n; i++ {
		var line string
		switch i % 5 {
		case 0:
			line = fmt.Sprintf("||vendor%04d.com^$third-party", i)
		case 1:
			line = fmt.Sprintf("||site%04d.com/ads.js", i)
		case 2:
			line = fmt.Sprintf("site%04d.com###notice%d", i, i)
		case 3:
			line = fmt.Sprintf("@@||benign%04d.com/ads.js", i)
		default:
			line = fmt.Sprintf("/detect%04d*.js$script,domain=site%04d.com", i, i)
		}
		r, err := Parse(line)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	return rules
}

var benchURLs = []string{
	"http://vendor0005.com/score.js",
	"http://site0001.com/ads.js",
	"http://cdn.other.net/lib/jquery.js",
	"http://img.other.net/banner.png",
	"http://site0123.com/js/app.js?v=9",
}

// BenchmarkListMatchAutomaton measures request matching through the
// compiled Aho–Corasick automaton (the production path). Besides the mean
// ns/op it reports a p50-ns metric from an untimed sampling pass — the
// acceptance gate for the match core is p50 < 1µs with zero allocations.
func BenchmarkListMatchAutomaton(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchRequest(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
	b.StopTimer()
	b.ReportMetric(matchP50ns(list), "p50-ns")
}

// matchP50ns samples individual MatchRequest latencies over the bench URL
// mix and returns the median in nanoseconds (timer overhead included, so
// the figure is an upper bound).
func matchP50ns(list *List) float64 {
	const samples = 5000
	lat := make([]time.Duration, samples)
	for i := range lat {
		q := Request{URL: benchURLs[i%len(benchURLs)], Type: TypeScript, PageDomain: "page.com"}
		start := time.Now()
		list.MatchRequest(q)
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(lat[samples/2].Nanoseconds())
}

// BenchmarkListMatchTokenIndex measures the token-hash keyword index —
// the previous production path, kept as the automaton's differential
// baseline and non-ASCII fallback.
func BenchmarkListMatchTokenIndex(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	list.tokenIndexes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchRequestTokenIndex(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
}

// BenchmarkListMatchNoMatch measures the pure-miss path — per the paper's
// observation that the overwhelming majority of rules never fire, this is
// the common case in production, and it must not allocate.
func BenchmarkListMatchNoMatch(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	q := Request{URL: "http://cdn.unrelated.net/static/app.js", Type: TypeScript, PageDomain: "page.com"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d, _ := list.MatchRequest(q); d != NoMatch {
			b.Fatal("URL must not match")
		}
	}
}

// BenchmarkListMatchLinear is the ablation baseline: match every rule
// without the keyword index. The index should win by a wide margin.
func BenchmarkListMatchLinear(b *testing.B) {
	rules := benchRules(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Request{URL: benchURLs[i%len(benchURLs)], Type: TypeScript, PageDomain: "page.com"}
		for _, r := range rules {
			if r.IsHTTP() && r.MatchRequest(q) {
				break
			}
		}
	}
}

// BenchmarkListCompile measures NewList over a 2000-rule set: parsing is
// excluded, so this is automaton construction plus matcher
// precompilation — the cost the per-revision cache pays once per revision
// and the cost a serving replica pays to load an uncompiled snapshot.
func BenchmarkListCompile(b *testing.B) {
	benchListCompile(b, 2000)
}

// BenchmarkListCompileLarge is ListCompile at 4× the rules, pinning how
// compile cost scales with list size (ListLoad must not).
func BenchmarkListCompileLarge(b *testing.B) {
	benchListCompile(b, 8000)
}

func benchListCompile(b *testing.B, n int) {
	rules := benchRules(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := NewList("bench", rules); l.Len() == 0 {
			b.Fatal("empty list")
		}
	}
}

// BenchmarkListLoad measures attaching a serialized automaton to the same
// rule set (NewListCompiled — the compiled-snapshot load path): instead of
// building the trie, the region is validated in place with O(states)
// bounds checks. The ListCompile/ListLoad ratio is the snapshot
// compilation win; the Load/LoadLarge pair shows load cost staying close
// to flat as the list grows.
func BenchmarkListLoad(b *testing.B) {
	benchListLoad(b, 2000)
}

// BenchmarkListLoadLarge is ListLoad at 4× the rules.
func BenchmarkListLoadLarge(b *testing.B) {
	benchListLoad(b, 8000)
}

func benchListLoad(b *testing.B, n int) {
	rules := benchRules(n)
	blob := NewList("bench", rules).AutomatonBytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := NewListCompiled("bench", rules, blob)
		if err != nil {
			b.Fatal(err)
		}
		if l.Len() == 0 {
			b.Fatal("empty list")
		}
	}
}

// BenchmarkSnapshotLoadMapped measures the end-to-end compiled snapshot
// load: mmap the file, verify the trailer, parse the rules, attach the
// automata from the mapped pages.
func BenchmarkSnapshotLoadMapped(b *testing.B) {
	path := filepath.Join(b.TempDir(), "lists.json")
	snap := &ListsSnapshot{Label: "bench", Lists: []*List{NewList("bench", benchRules(2000))}}
	if err := SaveListsSnapshotCompiled(path, snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, closer, err := OpenListsSnapshotMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if !s.Compiled {
			b.Fatal("snapshot did not load compiled")
		}
		closer.Close()
	}
	_ = os.Remove(path)
}

// BenchmarkMatchingHTTPRulesIndexed measures the all-matches lookup
// through the automaton probe stage (the replay's per-request path).
func BenchmarkMatchingHTTPRulesIndexed(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchingHTTPRules(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
}

// BenchmarkMatchingHTTPRulesLinear is its full-scan ablation baseline.
func BenchmarkMatchingHTTPRulesLinear(b *testing.B) {
	list := NewList("bench", benchRules(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := benchURLs[i%len(benchURLs)]
		list.MatchingHTTPRulesLinear(Request{URL: u, Type: TypeScript, PageDomain: "page.com"})
	}
}

// BenchmarkGlobPathological pins the wildcard fix: a star-heavy pattern
// against a long non-matching URL was exponential under the recursive
// matcher and is linear-ish under the two-pointer glob.
func BenchmarkGlobPathological(b *testing.B) {
	r, err := Parse("/a*a*a*a*a*a*a*a*a*b")
	if err != nil {
		b.Fatal(err)
	}
	u := "http://x.com/" + strings.Repeat("a", 512) + "c"
	q := Request{URL: u, Type: TypeScript, PageDomain: "x.com"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.MatchRequest(q) {
			b.Fatal("pathological pattern must not match")
		}
	}
}

// BenchmarkParseRule measures single-rule parsing.
func BenchmarkParseRule(b *testing.B) {
	lines := []string{
		"||pagefair.com^$third-party",
		"smashboards.com###noticeMain",
		"/example.js$script,domain=example2.com",
		"@@||numerama.com/ads.js",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElementHiding measures element hiding over a 50-element DOM.
func BenchmarkElementHiding(b *testing.B) {
	list := NewList("bench", benchRules(500))
	elems := make([]*Element, 50)
	for i := range elems {
		elems[i] = &Element{Tag: "div", ID: fmt.Sprintf("el%d", i), Classes: []string{"c"}}
	}
	elems[10].ID = "notice2"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list.HiddenElements("site0002.com", elems)
	}
}

// BenchmarkHistoryAt measures revision lookup in a 500-revision history.
func BenchmarkHistoryAt(b *testing.B) {
	h := NewHistory("bench")
	rules := benchRules(100)
	for i := 0; i < 500; i++ {
		h.Append(day(2012, 1, 1).AddDate(0, 0, i*3), rules[:1+(i%99)])
	}
	when := day(2014, 6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.At(when); !ok {
			b.Fatal("missing revision")
		}
	}
}
