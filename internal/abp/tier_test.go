package abp

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"adwars/internal/artifact"
)

// tierURLs extends the bench mix with queries that force every tier
// interaction: hot exception over cold block, cold-only block, hot block
// below and above coldMinBlk, pure miss, and the non-ASCII fallback.
func tierURLs() []string {
	urls := append([]string(nil), benchURLs...)
	return append(urls,
		"http://benign0003.com/ads.js",     // exception (hot by construction) over block
		"http://vendor0000.com/a.js",       // lowest-ordinal block
		"http://vendor1995.com/x.png",      // high-ordinal block
		"http://site1001.com/ads.js",       // mid-ordinal block
		"http://detect0004.example/x.js",   // keyword reachable, options veto
		"http://cdn.unrelated.net/app.js",  // pure miss
		"http://example.com/café.js", // non-ASCII: token-index fallback
	)
}

func tierQueries() []Request {
	urls := tierURLs()
	qs := make([]Request, 0, 2*len(urls))
	for _, u := range urls {
		qs = append(qs,
			Request{URL: u, Type: TypeScript, PageDomain: "page.com"},
			Request{URL: u, Type: TypeImage, PageDomain: HostOf(u)},
		)
	}
	return qs
}

// assertTierTransparent proves a tiered list is observationally identical
// to its untiered source across the full query mix: decision, winning
// rule, all-matches set, and the AppendHits/DecideHits serving path.
func assertTierTransparent(t *testing.T, name string, plain, tiered *List) {
	t.Helper()
	for _, q := range tierQueries() {
		wd, wr := plain.MatchRequest(q)
		gd, gr := tiered.MatchRequest(q)
		// Compare by rule text, not pointer: a snapshot round trip reparses
		// the rules into fresh *Rule values.
		if wd != gd || raw(gr) != raw(wr) {
			t.Fatalf("%s: %q: tiered (%v, %s) != untiered (%v, %s)",
				name, q.URL, gd, raw(gr), wd, raw(wr))
		}
		want := plain.MatchingHTTPRulesLinear(q)
		got := tiered.MatchingHTTPRules(q)
		if len(got) != len(want) {
			t.Fatalf("%s: %q: all-matches %d != linear %d", name, q.URL, len(got), len(want))
		}
		for i := range got {
			if got[i].Raw != want[i].Raw {
				t.Fatalf("%s: %q: all-matches[%d] = %q != %q", name, q.URL, i, got[i].Raw, want[i].Raw)
			}
		}
		hits := tiered.AppendHits(nil, q)
		if len(hits) != len(want) {
			t.Fatalf("%s: %q: hits %d != linear %d", name, q.URL, len(hits), len(want))
		}
		hd, hr, ord := DecideHits(hits)
		if hd != wd || raw(hr) != raw(wr) {
			t.Fatalf("%s: %q: DecideHits (%v, %s) != (%v, %s)", name, q.URL, hd, raw(hr), wd, raw(wr))
		}
		if hr != nil && tiered.Rules()[ord] != hr {
			t.Fatalf("%s: %q: DecideHits ordinal %d does not index the winning rule", name, q.URL, ord)
		}
	}
}

// TestTieredDifferential is the tier transparency gate over adversarial
// splits: nothing voluntarily hot (every keyword block cold), everything
// hot (cold tier empty), and striped mixes that scatter hot and cold
// ordinals through the candidate sets.
func TestTieredDifferential(t *testing.T) {
	plain := NewList("tier", benchRules(2000))
	splits := map[string]func(int) bool{
		"all-cold": nil,
		"all-hot":  func(int) bool { return true },
		"stripe-2": func(ord int) bool { return ord%2 == 0 },
		"stripe-3": func(ord int) bool { return ord%3 == 1 },
		"low-hot":  func(ord int) bool { return ord < 700 },
		"high-hot": func(ord int) bool { return ord >= 1300 },
	}
	for name, keep := range splits {
		tiered := plain.CompileTiered(keep)
		if !tiered.Tiered() || plain.Tiered() {
			t.Fatalf("%s: Tiered flags wrong", name)
		}
		assertTierTransparent(t, name, plain, tiered)
	}
}

// TestAppendHitsHotUntieredIdentical: on a list with no cold tier the
// brownout path is the full path — byte-for-byte the same hits.
func TestAppendHitsHotUntieredIdentical(t *testing.T) {
	plain := NewList("tier", benchRules(2000))
	for _, q := range tierQueries() {
		want := plain.AppendHits(nil, q)
		got := plain.AppendHitsHot(nil, q)
		if len(got) != len(want) {
			t.Fatalf("%q: hot-only %d hits != full %d on untiered list", q.URL, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: hot-only hit[%d] = %v != %v", q.URL, i, got[i], want[i])
			}
		}
	}
}

// TestAppendHitsHotDegradationIsOneSided pins the brownout contract on a
// tiered list: the hot-only hit set is a subset of the full set, every
// Allowed verdict is exact (exceptions are hot by construction), every
// hot-only Blocked verdict agrees with the full path, and the ONLY
// permitted drift is a cold block degraded to NoMatch. The adversarial
// all-cold split must actually exhibit that drift, or the test has no
// teeth.
func TestAppendHitsHotDegradationIsOneSided(t *testing.T) {
	plain := NewList("tier", benchRules(2000))
	splits := map[string]func(int) bool{
		"all-cold": nil,
		"stripe-2": func(ord int) bool { return ord%2 == 0 },
		"low-hot":  func(ord int) bool { return ord < 700 },
	}
	for name, keep := range splits {
		tiered := plain.CompileTiered(keep)
		drifted := false
		for _, q := range tierQueries() {
			full := tiered.AppendHits(nil, q)
			hot := tiered.AppendHitsHot(nil, q)
			// Subset, in order.
			fi := 0
			for _, h := range hot {
				for fi < len(full) && full[fi] != h {
					fi++
				}
				if fi == len(full) {
					t.Fatalf("%s: %q: hot-only hit %v absent from full set", name, q.URL, h)
				}
				fi++
			}
			fd, fr, _ := DecideHits(full)
			hd, hr, _ := DecideHits(hot)
			switch {
			case fd == hd:
				if raw(fr) != raw(hr) {
					t.Fatalf("%s: %q: same verdict, different rule: %s vs %s", name, q.URL, raw(hr), raw(fr))
				}
			case fd == Blocked && hd == NoMatch:
				drifted = true // the one permitted degradation
			default:
				t.Fatalf("%s: %q: impermissible drift: hot-only %v, full %v", name, q.URL, hd, fd)
			}
			if fd == Allowed && hd != Allowed {
				t.Fatalf("%s: %q: Allowed verdict lost under brownout", name, q.URL)
			}
		}
		if name == "all-cold" && !drifted {
			t.Fatalf("%s: no cold block degraded — the differential exercised nothing", name)
		}
	}
}

// TestTieredDeterministic pins tier compilation determinism: the same
// rules and keep set must serialize to identical hot and cold bytes
// (snapshot versions are content CRCs; a recompile must not change them).
func TestTieredDeterministic(t *testing.T) {
	plain := NewList("tier", benchRules(800))
	keep := func(ord int) bool { return ord%5 == 0 }
	a, b := plain.CompileTiered(keep), plain.CompileTiered(keep)
	if string(a.AutomatonBytes()) != string(b.AutomatonBytes()) {
		t.Fatal("hot tier bytes differ across identical compiles")
	}
	if string(a.ColdAutomatonBytes()) != string(b.ColdAutomatonBytes()) {
		t.Fatal("cold tier bytes differ across identical compiles")
	}
}

// TestTieredSnapshotRoundTrip proves the v4 snapshot is lossless: a
// tiered snapshot reloads tiered, with byte-identical tier regions and
// identical match behavior, through both the read and mmap paths.
func TestTieredSnapshotRoundTrip(t *testing.T) {
	plain := NewList("AAK", benchRules(1000))
	tiered := plain.CompileTiered(func(ord int) bool { return ord%4 == 0 })
	second := NewList("CEL", benchRules(300)).CompileTiered(nil)
	snap := &ListsSnapshot{Label: "tiered-rt", Lists: []*List{tiered, second}}

	path := filepath.Join(t.TempDir(), "lists.v4.json")
	if err := SaveListsSnapshotTiered(path, snap); err != nil {
		t.Fatalf("SaveListsSnapshotTiered: %v", err)
	}
	for _, mode := range []string{"read", "mmap"} {
		var got *ListsSnapshot
		switch mode {
		case "read":
			s, err := LoadListsSnapshot(path)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			got = s
		case "mmap":
			s, closer, err := OpenListsSnapshotMapped(path)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			defer closer.Close()
			got = s
		}
		if !got.Compiled || !got.Tiered {
			t.Fatalf("%s: Compiled=%v Tiered=%v, want both true", mode, got.Compiled, got.Tiered)
		}
		rt := got.Lists[0]
		if !rt.Tiered() {
			t.Fatalf("%s: reloaded list lost its tiers", mode)
		}
		if string(rt.AutomatonBytes()) != string(tiered.AutomatonBytes()) ||
			string(rt.ColdAutomatonBytes()) != string(tiered.ColdAutomatonBytes()) {
			t.Fatalf("%s: tier regions not byte-identical after round trip", mode)
		}
		assertTierTransparent(t, mode, plain, rt)
	}

	// A plain v3 compiled snapshot still loads and reports untiered.
	v3 := filepath.Join(t.TempDir(), "lists.v3.json")
	if err := SaveListsSnapshotCompiled(v3, &ListsSnapshot{Lists: []*List{plain}}); err != nil {
		t.Fatal(err)
	}
	s, err := LoadListsSnapshot(v3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Compiled || s.Tiered {
		t.Fatalf("v3: Compiled=%v Tiered=%v, want compiled untiered", s.Compiled, s.Tiered)
	}
}

// TestTieredHistoryDifferential runs the tier transparency gate at the
// history level: every revision's in-force list, compiled tiered, must
// answer identically to its untiered compile — growing rule sets shift
// every ordinal boundary the staged probe depends on (coldMinBlk, the
// exception frontier), so each revision is a fresh adversarial split.
func TestTieredHistoryDifferential(t *testing.T) {
	all := benchRules(900)
	h := NewHistory("tier-history")
	for i, cut := range []int{150, 400, 900} {
		h.Append(day(2014, time.Month(1+i), 1), all[:cut])
	}
	for _, at := range []time.Time{day(2014, 1, 15), day(2014, 2, 15), day(2014, 6, 1)} {
		plain := h.ListAt(at)
		tiered := plain.CompileTiered(func(ord int) bool { return ord%7 == 3 })
		assertTierTransparent(t, at.Format("2006-01"), plain, tiered)
	}
}

// TestTieredValidation is the corruption matrix for tier attachment:
// miscompiled tiers — membership overlap, missing rules, an exception in
// the cold tier, a keyword-less cold rule — are refused as corrupt.
func TestTieredValidation(t *testing.T) {
	rules := benchRules(500)
	plain := NewList("v", rules)
	tiered := plain.CompileTiered(func(ord int) bool { return ord%2 == 0 })
	hot, cold := tiered.AutomatonBytes(), tiered.ColdAutomatonBytes()

	// The pristine pair attaches.
	if _, err := NewListTiered("v", rules, hot, cold); err != nil {
		t.Fatalf("pristine tier pair refused: %v", err)
	}
	// Hot paired with itself: every hot ordinal lands in both tiers.
	if _, err := NewListTiered("v", rules, hot, hot); err == nil {
		t.Fatal("overlapping tiers accepted")
	} else if !isCorrupt(err) {
		t.Fatalf("overlap error %v does not wrap ErrCorrupt", err)
	}
	// Cold tier alone as the hot automaton: exceptions vanish from both
	// tiers (and plenty of blocks are missing too).
	if _, err := NewListTiered("v", rules, cold, cold); err == nil {
		t.Fatal("tiers with missing rules accepted")
	}
	// An "exception relegated to cold" compile: build tier automatons by
	// hand with one exception moved cold.
	var excOrd = -1
	for ord, r := range plain.Rules() {
		if r.Kind == KindHTTPException && r.AutomatonKeyword() != "" {
			excOrd = ord
			break
		}
	}
	if excOrd < 0 {
		t.Fatal("bench rules carry no keyworded exception")
	}
	n := len(plain.Rules())
	hotM, coldM := make([]bool, n), make([]bool, n)
	for ord, r := range plain.Rules() {
		if !r.IsHTTP() {
			continue
		}
		if ord == excOrd {
			coldM[ord] = true
		} else {
			hotM[ord] = true
		}
	}
	badHot := buildAutomatonMember(plain.Rules(), plain.rulesCRC, hotM)
	badCold := buildAutomatonMember(plain.Rules(), plain.rulesCRC, coldM)
	if _, err := NewListTiered("v", rules, badHot.Bytes(), badCold.Bytes()); err == nil {
		t.Fatal("cold exception accepted")
	} else if !isCorrupt(err) {
		t.Fatalf("cold-exception error %v does not wrap ErrCorrupt", err)
	}

	// A v4 snapshot carrying only one tier section of the pair is corrupt.
	snap := &ListsSnapshot{Lists: []*List{tiered}}
	payload, err := marshalListsJSON(snap, listsSnapshotTieredVersion)
	if err != nil {
		t.Fatal(err)
	}
	payload = artifact.AppendSection(payload, hotSectionName(0), hot)
	if _, err := parseListsSnapshot(artifact.Seal(payload)); err == nil {
		t.Fatal("half a tier pair accepted")
	} else if !isCorrupt(err) {
		t.Fatalf("half-pair error %v does not wrap ErrCorrupt", err)
	}
}

// TestTierStats sanity-checks the tier geometry report the compaction
// tool and benches surface.
func TestTierStats(t *testing.T) {
	plain := NewList("s", benchRules(1000))
	flat := plain.TierStats()
	if flat.ColdBytes != 0 || flat.ColdRules != 0 || flat.HotRules == 0 {
		t.Fatalf("untiered stats = %+v", flat)
	}
	tiered := plain.CompileTiered(nil) // only forced-hot rules stay hot
	st := tiered.TierStats()
	if st.HotRules+st.ColdRules != flat.HotRules {
		t.Fatalf("tier split loses rules: %+v vs %d HTTP rules", st, flat.HotRules)
	}
	if st.ColdRules == 0 {
		t.Fatal("nothing went cold under a nil keep")
	}
	if st.HotBytes >= flat.HotBytes {
		t.Fatalf("hot working set did not shrink: %d >= %d", st.HotBytes, flat.HotBytes)
	}
	if !tiered.IsHotRule(tierFirstException(tiered)) {
		t.Fatal("exception not reported hot")
	}
}

func tierFirstException(l *List) int {
	for ord, r := range l.Rules() {
		if r.Kind == KindHTTPException {
			return ord
		}
	}
	return -1
}

// TestUsageLoopCoverage drives the full feedback loop the PR exists for:
// serve traffic with counters on, compact the list around the observed
// usage, and verify (a) answers stay identical, (b) ≥95% of match
// verdicts on the same traffic are then won by hot-tier rules, and (c)
// the hot working set is measurably smaller than the untiered automaton.
func TestUsageLoopCoverage(t *testing.T) {
	plain := NewList("loop", benchRules(2000))
	plain.EnableUsage()
	qs := tierQueries()
	for _, q := range qs {
		plain.MatchRequest(q)
	}
	counts := plain.Usage().Counts()
	tiered := plain.CompileTiered(func(ord int) bool { return counts[ord] > 0 })
	assertTierTransparent(t, "usage-loop", plain, tiered)

	matches, hotWins := 0, 0
	for _, q := range qs {
		hits := tiered.AppendHits(nil, q)
		_, r, ord := DecideHits(hits)
		if r == nil {
			continue
		}
		matches++
		if tiered.IsHotRule(ord) {
			hotWins++
		}
	}
	if matches == 0 {
		t.Fatal("query mix produced no matches")
	}
	if cov := float64(hotWins) / float64(matches); cov < 0.95 {
		t.Fatalf("hot coverage %.2f < 0.95 (%d/%d)", cov, hotWins, matches)
	}
	st, flat := tiered.TierStats(), plain.TierStats()
	if st.HotBytes >= flat.HotBytes {
		t.Fatalf("hot tier %dB not smaller than untiered %dB", st.HotBytes, flat.HotBytes)
	}
}

// TestUsageCounters pins the recording semantics: exactly one hit per
// match verdict, attributed to the winning rule's ordinal, none for
// no-match, and the same attribution through the AppendHits/RecordUsage
// serving path and the non-ASCII token-index fallback.
func TestUsageCounters(t *testing.T) {
	l := buildList(t, "u",
		"||ads.example^",
		"@@||ads.example/allowed",
		"/banner.",
	)
	l.EnableUsage()
	q := func(u string) Request { return Request{URL: u, Type: TypeScript, PageDomain: "p.com"} }

	l.MatchRequest(q("http://ads.example/x.js"))        // block, ordinal 0
	l.MatchRequest(q("http://ads.example/allowed/a"))   // exception, ordinal 1
	l.MatchRequest(q("http://x.com/banner.png"))        // block, ordinal 2
	l.MatchRequest(q("http://x.com/banner.café")) // fallback path, ordinal 2
	l.MatchRequest(q("http://clean.example/app.js"))    // no match

	hits := l.AppendHits(nil, q("http://ads.example/y.js"))
	_, _, ord := DecideHits(hits)
	l.RecordUsage(ord) // ordinal 0 again
	l.RecordUsage(-1)  // no-match verdict: must be ignored

	got := l.Usage().Counts()
	want := []uint64{2, 1, 2}
	for ord, w := range want {
		if got[ord] != w {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
	if total := l.Usage().Total(); total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	// Disabled lists record nothing and stay nil.
	if NewList("off", l.Rules()).Usage() != nil {
		t.Fatal("usage bank present without EnableUsage")
	}
}

// TestUsageRecordZeroAllocs extends the hot-path allocation gate to
// counter recording: matching with usage enabled must still not allocate.
func TestUsageRecordZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	list := NewList("gate", benchRules(2000))
	list.EnableUsage()
	qs := make([]Request, len(benchURLs))
	for i, u := range benchURLs {
		qs[i] = Request{URL: u, Type: TypeScript, PageDomain: "page.com"}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		list.MatchRequest(qs[i%len(qs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("MatchRequest with usage enabled allocates %.1f/op, want 0", allocs)
	}
}

// TestUsageStress is the loadgen-ledger-style reconciliation gate, meant
// for -race: GOMAXPROCS goroutines hammer a usage-enabled list while
// readers merge the shards concurrently, and the final merge must equal
// the exact number of matching verdicts issued — sharded counters may
// not lose or double-count a single hit.
func TestUsageStress(t *testing.T) {
	list := NewList("stress", benchRules(2000))
	list.EnableUsage()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 5000
	qs := tierQueries()

	var wg sync.WaitGroup
	issued := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n uint64
			for i := 0; i < perWorker; i++ {
				q := qs[(w+i)%len(qs)]
				if d, _ := list.MatchRequest(q); d != NoMatch {
					n++
				}
				// The serving path records through AppendHits+RecordUsage.
				if i%16 == 0 {
					var buf [8]Hit
					_, _, ord := DecideHits(list.AppendHits(buf[:0], q))
					list.RecordUsage(ord)
					if ord >= 0 {
						n++
					}
				}
			}
			issued[w] = n
		}(w)
	}
	// Concurrent aggregate readers: merges mid-traffic must be safe (the
	// values they see are per-counter consistent, monotone snapshots).
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tot := list.Usage().Total(); tot < last {
					t.Error("usage total went backwards")
					return
				} else {
					last = tot
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var want uint64
	for _, n := range issued {
		want += n
	}
	if want == 0 {
		t.Fatal("stress issued no matching verdicts")
	}
	if got := list.Usage().Total(); got != want {
		t.Fatalf("usage total %d != issued matches %d", got, want)
	}
	var sum uint64
	for _, c := range list.Usage().Counts() {
		sum += c
	}
	if sum != want {
		t.Fatalf("per-ordinal counts sum %d != issued matches %d", sum, want)
	}
}

// TestUsageShardSpread sanity-checks the stack-address shard hash: under
// concurrent recording from many goroutines, more than one shard bank
// must take writes (otherwise sharding is decorative).
func TestUsageShardSpread(t *testing.T) {
	u := newUsage(4)
	if len(u.banks) == 1 {
		t.Skip("single-P process: sharding degenerates legitimately")
	}
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				u.record(i % 4)
			}
		}()
	}
	wg.Wait()
	touched := 0
	for i := range u.banks {
		var n uint64
		for ord := range u.banks[i].counters {
			n += u.banks[i].counters[ord].Load()
		}
		if n > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("all writes landed in %d shard(s) of %d", touched, len(u.banks))
	}
}

