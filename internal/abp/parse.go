package abp

import (
	"errors"
	"fmt"
	"strings"
)

// Parse errors returned for malformed lines. Callers that ingest whole lists
// should prefer ParseList, which skips comments and collects errors.
var (
	ErrEmptyLine    = errors.New("abp: empty line")
	ErrCommentLine  = errors.New("abp: comment line")
	ErrBadSelector  = errors.New("abp: malformed element hiding selector")
	ErrBadOption    = errors.New("abp: unknown filter option")
	ErrEmptyPattern = errors.New("abp: empty URL pattern")
)

// Parse parses a single filter list line into a Rule. Comment lines ("!",
// "[") return a Rule with KindComment and ErrCommentLine; blank lines return
// ErrEmptyLine. Lines that look like rules but are malformed return a nil
// Rule and a descriptive error.
func Parse(line string) (*Rule, error) {
	raw := line
	line = strings.TrimSpace(line)
	if line == "" {
		return nil, ErrEmptyLine
	}
	if strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
		return &Rule{Raw: raw, Kind: KindComment}, ErrCommentLine
	}

	// Element hiding rules: domains##selector, domains#@#selector.
	// Check before HTTP parsing so "#" inside URLs does not confuse us:
	// the element hiding separator is "##" or "#@#".
	if i := strings.Index(line, "#@#"); i >= 0 {
		return parseElemHide(raw, line[:i], line[i+3:], true)
	}
	if i := strings.Index(line, "##"); i >= 0 {
		return parseElemHide(raw, line[:i], line[i+2:], false)
	}

	return parseHTTP(raw, line)
}

// parseElemHide parses the element hiding form. prefix is the (possibly
// empty) comma-separated domain list, sel the CSS selector text.
func parseElemHide(raw, prefix, sel string, exception bool) (*Rule, error) {
	r := &Rule{Raw: raw, Kind: KindElemHide}
	if exception {
		r.Kind = KindElemHideException
	}
	prefix = strings.TrimSpace(prefix)
	if prefix != "" {
		for _, d := range strings.Split(prefix, ",") {
			d = strings.ToLower(strings.TrimSpace(d))
			if d == "" {
				continue
			}
			if strings.HasPrefix(d, "~") {
				r.NotDomains = append(r.NotDomains, d[1:])
			} else {
				r.Domains = append(r.Domains, d)
			}
		}
	}
	selector, err := ParseSelector(strings.TrimSpace(sel))
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrBadSelector, sel, err)
	}
	r.Selector = selector
	return r, nil
}

// parseHTTP parses an HTTP request rule (blocking or "@@" exception).
func parseHTTP(raw, line string) (*Rule, error) {
	r := &Rule{Raw: raw, Kind: KindHTTPBlock}
	if strings.HasPrefix(line, "@@") {
		r.Kind = KindHTTPException
		line = line[2:]
	}

	// Split off the "$options" suffix. A '$' inside the pattern is rare in
	// practice; Adblock Plus treats the last '$' as the option separator
	// when the suffix parses as options.
	if i := strings.LastIndexByte(line, '$'); i >= 0 {
		if opts := line[i+1:]; looksLikeOptions(opts) {
			if err := r.parseOptions(opts); err != nil {
				return nil, err
			}
			line = line[:i]
		}
	}

	if strings.HasPrefix(line, "||") {
		r.DomainAnchor = true
		line = line[2:]
	} else if strings.HasPrefix(line, "|") {
		r.StartAnchor = true
		line = line[1:]
	}
	if strings.HasSuffix(line, "|") {
		r.EndAnchor = true
		line = line[:len(line)-1]
	}
	if line == "" {
		return nil, ErrEmptyPattern
	}
	r.Pattern = line
	// Compile the URL matcher now, while the rule is still private to this
	// call: rule objects are shared across list revisions and concurrent
	// readers, so matcher state must never be written lazily at match time.
	r.Precompile()
	return r, nil
}

// looksLikeOptions reports whether s is plausibly a comma-separated option
// list rather than part of the URL pattern.
func looksLikeOptions(s string) bool {
	if s == "" {
		return false
	}
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimPrefix(strings.TrimSpace(opt), "~")
		if opt == "" {
			return false
		}
		name := opt
		if i := strings.IndexByte(opt, '='); i >= 0 {
			name = opt[:i]
		}
		if !isOptionName(strings.ToLower(name)) {
			return false
		}
	}
	return true
}

// knownOptions enumerates the filter options the engine understands. Options
// the paper's lists use but that do not affect matching in our substrate
// (e.g. collapse) are accepted and ignored.
var knownOptions = map[string]bool{
	"script": true, "image": true, "stylesheet": true, "object": true,
	"xmlhttprequest": true, "subdocument": true, "document": true,
	"elemhide": true, "popup": true, "other": true, "third-party": true,
	"domain": true, "match-case": true, "collapse": true, "media": true,
	"font": true, "websocket": true, "ping": true, "object-subrequest": true,
	"genericblock": true, "generichide": true,
}

func isOptionName(name string) bool { return knownOptions[name] }

// typeOptions maps option names to request types for content-type filtering.
var typeOptions = map[string]RequestType{
	"script": TypeScript, "image": TypeImage, "stylesheet": TypeStylesheet,
	"object": TypeObject, "xmlhttprequest": TypeXHR,
	"subdocument": TypeSubdocument, "document": TypeDocument,
	"popup": TypePopup, "other": TypeOther, "media": TypeOther,
	"font": TypeOther, "websocket": TypeOther, "ping": TypeOther,
	"object-subrequest": TypeObject,
}

// parseOptions parses the comma-separated option list after '$'.
func (r *Rule) parseOptions(opts string) error {
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		neg := strings.HasPrefix(opt, "~")
		if neg {
			opt = opt[1:]
		}
		name, value := opt, ""
		if i := strings.IndexByte(opt, '='); i >= 0 {
			name, value = opt[:i], opt[i+1:]
		}
		name = strings.ToLower(name)
		switch {
		case name == "domain":
			for _, d := range strings.Split(value, "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if d == "" {
					continue
				}
				if strings.HasPrefix(d, "~") {
					r.NotDomains = append(r.NotDomains, d[1:])
				} else {
					r.Domains = append(r.Domains, d)
				}
			}
		case name == "third-party":
			if neg {
				r.ThirdParty = -1
			} else {
				r.ThirdParty = +1
			}
		case name == "match-case":
			r.MatchCase = true
		case name == "elemhide":
			r.DisableElemHide = true
		case name == "generichide":
			r.DisableGenericHide = true
		case typeOptions[name] != "":
			if neg {
				r.NotTypes = append(r.NotTypes, typeOptions[name])
			} else {
				r.Types = append(r.Types, typeOptions[name])
			}
		case isOptionName(name):
			// Recognized but irrelevant to our matcher (collapse, …).
		default:
			return fmt.Errorf("%w: %q", ErrBadOption, opt)
		}
	}
	return nil
}

// ParseList parses an entire filter list body (one rule per line). Comments
// and blank lines are skipped. Malformed rule lines are collected into errs
// but do not abort parsing, matching how adblockers tolerate bad lines.
func ParseList(body string) (rules []*Rule, errs []error) {
	for _, line := range strings.Split(body, "\n") {
		r, err := Parse(line)
		switch {
		case err == nil:
			rules = append(rules, r)
		case errors.Is(err, ErrEmptyLine), errors.Is(err, ErrCommentLine):
			// skip
		default:
			errs = append(errs, fmt.Errorf("line %q: %w", line, err))
		}
	}
	return rules, errs
}
