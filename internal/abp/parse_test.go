package abp

import (
	"errors"
	"testing"
)

func mustParse(t *testing.T, line string) *Rule {
	t.Helper()
	r, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return r
}

func TestParseHTTPBlockPlain(t *testing.T) {
	r := mustParse(t, "/ads.js?")
	if r.Kind != KindHTTPBlock {
		t.Fatalf("kind = %v, want http-block", r.Kind)
	}
	if r.Pattern != "/ads.js?" || r.DomainAnchor || r.StartAnchor || r.EndAnchor {
		t.Fatalf("unexpected parse: %+v", r)
	}
	if got := r.Class(); got != ClassHTTPPlain {
		t.Fatalf("class = %v, want %v", got, ClassHTTPPlain)
	}
}

func TestParseDomainAnchor(t *testing.T) {
	r := mustParse(t, "||example1.com")
	if !r.DomainAnchor || r.Pattern != "example1.com" {
		t.Fatalf("unexpected parse: %+v", r)
	}
	if got := r.Class(); got != ClassHTTPAnchor {
		t.Fatalf("class = %v, want %v", got, ClassHTTPAnchor)
	}
}

func TestParseDomainAnchorWithScriptOption(t *testing.T) {
	r := mustParse(t, "||example1.com$script")
	if len(r.Types) != 1 || r.Types[0] != TypeScript {
		t.Fatalf("types = %v, want [script]", r.Types)
	}
	if got := r.Class(); got != ClassHTTPAnchor {
		t.Fatalf("class = %v, want %v", got, ClassHTTPAnchor)
	}
}

func TestParseAnchorAndTag(t *testing.T) {
	// Rule 3 of Code 1 in the paper.
	r := mustParse(t, "||example1.com$script,domain=example2.com")
	if !r.DomainAnchor {
		t.Fatal("want domain anchor")
	}
	if len(r.Domains) != 1 || r.Domains[0] != "example2.com" {
		t.Fatalf("domains = %v", r.Domains)
	}
	if got := r.Class(); got != ClassHTTPAnchorTag {
		t.Fatalf("class = %v, want %v", got, ClassHTTPAnchorTag)
	}
}

func TestParseTagOnly(t *testing.T) {
	// Rule 4 of Code 1 in the paper.
	r := mustParse(t, "/example.js$script,domain=example2.com")
	if r.DomainAnchor {
		t.Fatal("unexpected domain anchor")
	}
	if got := r.Class(); got != ClassHTTPTag {
		t.Fatalf("class = %v, want %v", got, ClassHTTPTag)
	}
}

func TestParseThirdParty(t *testing.T) {
	// Rule 1 of Code 6 in the paper.
	r := mustParse(t, "||pagefair.com^$third-party")
	if r.ThirdParty != 1 {
		t.Fatalf("third-party = %d, want 1", r.ThirdParty)
	}
	if !r.DomainAnchor || r.Pattern != "pagefair.com^" {
		t.Fatalf("unexpected parse: %+v", r)
	}
}

func TestParseNegatedThirdParty(t *testing.T) {
	r := mustParse(t, "||ads.example.com^$~third-party")
	if r.ThirdParty != -1 {
		t.Fatalf("third-party = %d, want -1", r.ThirdParty)
	}
}

func TestParseHTTPException(t *testing.T) {
	// Rule 1 of Code 3 in the paper.
	r := mustParse(t, "@@||example.com$script")
	if r.Kind != KindHTTPException {
		t.Fatalf("kind = %v, want http-exception", r.Kind)
	}
	if !r.IsException() {
		t.Fatal("IsException() = false")
	}
}

func TestParseElemHideWithDomain(t *testing.T) {
	// Rule 2 of Code 6 in the paper.
	r := mustParse(t, "smashboards.com###noticeMain")
	if r.Kind != KindElemHide {
		t.Fatalf("kind = %v", r.Kind)
	}
	if len(r.Domains) != 1 || r.Domains[0] != "smashboards.com" {
		t.Fatalf("domains = %v", r.Domains)
	}
	if r.Selector.ID != "noticeMain" {
		t.Fatalf("selector id = %q", r.Selector.ID)
	}
	if got := r.Class(); got != ClassHTMLWithDomain {
		t.Fatalf("class = %v, want %v", got, ClassHTMLWithDomain)
	}
}

func TestParseElemHideClassSelector(t *testing.T) {
	// Rule 2 of Code 2 in the paper.
	r := mustParse(t, "example.com##.examplebanner")
	if len(r.Selector.Classes) != 1 || r.Selector.Classes[0] != "examplebanner" {
		t.Fatalf("selector classes = %v", r.Selector.Classes)
	}
}

func TestParseElemHideGeneric(t *testing.T) {
	// Rule 3 of Code 2 in the paper.
	r := mustParse(t, "###examplebanner")
	if len(r.Domains) != 0 {
		t.Fatalf("domains = %v, want none", r.Domains)
	}
	if got := r.Class(); got != ClassHTMLNoDomain {
		t.Fatalf("class = %v, want %v", got, ClassHTMLNoDomain)
	}
}

func TestParseElemHideException(t *testing.T) {
	r := mustParse(t, "example.com#@##elementbanner")
	if r.Kind != KindElemHideException {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Selector.ID != "elementbanner" {
		t.Fatalf("selector id = %q", r.Selector.ID)
	}
}

func TestParseCommentAndBlank(t *testing.T) {
	if _, err := Parse("! a comment"); !errors.Is(err, ErrCommentLine) {
		t.Fatalf("comment err = %v", err)
	}
	if _, err := Parse("[Adblock Plus 2.0]"); !errors.Is(err, ErrCommentLine) {
		t.Fatalf("header err = %v", err)
	}
	if _, err := Parse("   "); !errors.Is(err, ErrEmptyLine) {
		t.Fatalf("blank err = %v", err)
	}
}

func TestParseNegatedDomains(t *testing.T) {
	r := mustParse(t, "/banner.js$domain=a.com|~sub.a.com|b.com")
	if len(r.Domains) != 2 || len(r.NotDomains) != 1 {
		t.Fatalf("domains=%v notdomains=%v", r.Domains, r.NotDomains)
	}
}

func TestParseBadOption(t *testing.T) {
	if _, err := Parse("||example.com$bogusoption"); err != nil {
		// "$bogusoption" does not look like an option list, so it is
		// treated as part of the pattern — ABP-compatible behaviour.
		t.Fatalf("unexpected error: %v", err)
	}
	r := mustParse(t, "||example.com$bogusoption")
	if r.Pattern != "example.com$bogusoption" {
		t.Fatalf("pattern = %q", r.Pattern)
	}
}

func TestParseEndAnchor(t *testing.T) {
	r := mustParse(t, "|http://example.com/ads.js|")
	if !r.StartAnchor || !r.EndAnchor {
		t.Fatalf("anchors: start=%v end=%v", r.StartAnchor, r.EndAnchor)
	}
	if r.Pattern != "http://example.com/ads.js" {
		t.Fatalf("pattern = %q", r.Pattern)
	}
}

func TestParseListSkipsComments(t *testing.T) {
	body := "! header\n||a.com^\n\nexample.com###x\n[Adblock]\n@@||b.com^$script\n"
	rules, errs := ParseList(body)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if len(rules) != 3 {
		t.Fatalf("len(rules) = %d, want 3", len(rules))
	}
}

func TestTargetDomains(t *testing.T) {
	r := mustParse(t, "||pagefair.com/static/adblock_detection/js/d.min.js$domain=majorleaguegaming.com")
	got := r.TargetDomains()
	want := []string{"majorleaguegaming.com", "pagefair.com"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("TargetDomains = %v, want %v", got, want)
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	lines := []string{
		"||example1.com$script,domain=example2.com",
		"smashboards.com###noticeMain",
		"@@||numerama.com/ads.js",
	}
	for _, l := range lines {
		if got := mustParse(t, l).String(); got != l {
			t.Errorf("String() = %q, want %q", got, l)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindComment: "comment", KindHTTPBlock: "http-block",
		KindHTTPException: "http-exception", KindElemHide: "elemhide",
		KindElemHideException: "elemhide-exception", KindInvalid: "invalid",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
