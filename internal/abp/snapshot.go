package abp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"adwars/internal/artifact"
)

// List snapshots freeze a set of compiled filter lists for the serving
// layer: adwars-lists -save-snapshot writes one, adwars-serve loads it and
// answers /v1/match from the compiled result. Rules are stored as their
// canonical source lines (Rule.Raw) and recompiled on load — Parse is
// deterministic, so a reloaded list matches byte-identically to the one
// that was saved (asserted by the round-trip tests).
//
// Since schema version 2 every snapshot is sealed with an artifact
// integrity trailer (CRC64 + payload length): torn writes and bit rot are
// rejected at load instead of silently changing match decisions.
// Version-1 files predate the trailer and still load.
//
// Schema version 3 additionally carries each list's compiled match
// automaton as a framed binary section (artifact.AppendSection) between
// the JSON document and the trailer. A v3 loader attaches the serialized
// automaton instead of rebuilding the probe index, so load cost is
// dominated by rule parsing and bounds validation rather than index
// construction — and OpenListsSnapshotMapped serves the automaton pages
// straight from an mmap of the file, shared across replica processes.
// Every automaton section embeds the CRC-64 of the exact rule lines it
// was compiled from; a snapshot whose JSON was edited without recompiling
// is refused as corrupt rather than matching against stale states.

const (
	// ListsSnapshotFormat is the format tag every lists snapshot carries.
	ListsSnapshotFormat = "adwars-lists"
	// ListsSnapshotVersion is the newest snapshot schema version this
	// build reads and the version WriteListsSnapshotTiered writes.
	ListsSnapshotVersion = 4
	// listsSnapshotPlainVersion is the version WriteListsSnapshot writes:
	// JSON only, no compiled sections.
	listsSnapshotPlainVersion = 2
	// listsSnapshotSealedVersion is the first schema version that requires
	// an integrity trailer.
	listsSnapshotSealedVersion = 2
	// listsSnapshotCompiledVersion is the first schema version that may
	// carry compiled automaton sections (and the version
	// WriteListsSnapshotCompiled writes).
	listsSnapshotCompiledVersion = 3
	// listsSnapshotTieredVersion is the first schema version that may
	// carry hot/cold tier section pairs (see adwars-compact).
	listsSnapshotTieredVersion = 4
)

// ErrSnapshotFormat reports a file that is not a lists snapshot at all.
var ErrSnapshotFormat = errors.New("abp: not an adwars lists snapshot")

// ErrSnapshotVersion reports a snapshot written by an unknown (newer)
// schema version.
var ErrSnapshotVersion = errors.New("abp: unsupported lists snapshot version")

// ListsSnapshot is a set of compiled filter lists frozen for serving.
type ListsSnapshot struct {
	// Label optionally identifies the snapshot's provenance (e.g. the
	// crawl date the lists were taken from). Informational only.
	Label string
	// Lists are the compiled lists, ready for concurrent matching.
	Lists []*List
	// Compiled reports whether every list's automaton was attached from a
	// serialized snapshot section rather than rebuilt at load time.
	Compiled bool
	// Tiered reports whether every list carries a hot/cold tier split
	// (schema v4, produced by adwars-compact from a usage dump).
	Tiered bool
}

// Rules returns the total rule count across all lists.
func (s *ListsSnapshot) Rules() int {
	n := 0
	for _, l := range s.Lists {
		n += l.Len()
	}
	return n
}

type listJSON struct {
	Name  string   `json:"name"`
	Rules []string `json:"rules"`
}

type listsSnapshotJSON struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Label   string     `json:"label,omitempty"`
	Lists   []listJSON `json:"lists"`
}

// WriteListsSnapshot writes the snapshot to w as a plain (JSON-only,
// version 2) document, sealed with an integrity trailer. Loaders rebuild
// each list's automaton from the rules.
func WriteListsSnapshot(w io.Writer, s *ListsSnapshot) error {
	payload, err := marshalListsJSON(s, listsSnapshotPlainVersion)
	if err != nil {
		return err
	}
	_, err = w.Write(artifact.Seal(payload))
	return err
}

// WriteListsSnapshotCompiled writes the snapshot to w as a version-3
// document: the JSON rule lists followed by one framed binary section per
// list ("automaton.<i>") holding that list's serialized match automaton,
// all sealed under the integrity trailer. Loaders attach the sections
// instead of recompiling, and OpenListsSnapshotMapped can serve them
// straight from mapped file pages.
func WriteListsSnapshotCompiled(w io.Writer, s *ListsSnapshot) error {
	payload, err := marshalListsJSON(s, listsSnapshotCompiledVersion)
	if err != nil {
		return err
	}
	for i, l := range s.Lists {
		payload = artifact.AppendSection(payload, automatonSectionName(i), l.AutomatonBytes())
	}
	_, err = w.Write(artifact.Seal(payload))
	return err
}

// WriteListsSnapshotTiered writes the snapshot to w as a version-4
// document: the JSON rule lists followed by a hot/cold section pair per
// list ("automaton.hot.<i>" / "automaton.cold.<i>") holding that list's
// tier automatons, all sealed under the integrity trailer. Every list
// must be tiered (CompileTiered); loaders reattach both tiers and
// re-derive the membership invariants from the sections themselves.
func WriteListsSnapshotTiered(w io.Writer, s *ListsSnapshot) error {
	for _, l := range s.Lists {
		if !l.Tiered() {
			return fmt.Errorf("abp: tiered snapshot: list %q is not tiered", l.Name)
		}
	}
	payload, err := marshalListsJSON(s, listsSnapshotTieredVersion)
	if err != nil {
		return err
	}
	for i, l := range s.Lists {
		payload = artifact.AppendSection(payload, hotSectionName(i), l.AutomatonBytes())
		payload = artifact.AppendSection(payload, coldSectionName(i), l.ColdAutomatonBytes())
	}
	_, err = w.Write(artifact.Seal(payload))
	return err
}

// automatonSectionName names list i's automaton section in a v3 snapshot.
func automatonSectionName(i int) string { return fmt.Sprintf("automaton.%d", i) }

// hotSectionName / coldSectionName name list i's tier sections in a v4
// snapshot.
func hotSectionName(i int) string  { return fmt.Sprintf("automaton.hot.%d", i) }
func coldSectionName(i int) string { return fmt.Sprintf("automaton.cold.%d", i) }

func marshalListsJSON(s *ListsSnapshot, version int) ([]byte, error) {
	doc := listsSnapshotJSON{
		Format:  ListsSnapshotFormat,
		Version: version,
		Label:   s.Label,
	}
	for _, l := range s.Lists {
		lj := listJSON{Name: l.Name, Rules: make([]string, 0, l.Len())}
		for _, r := range l.Rules() {
			lj.Rules = append(lj.Rules, r.Raw)
		}
		doc.Lists = append(doc.Lists, lj)
	}
	payload, err := json.Marshal(&doc)
	if err != nil {
		return nil, err
	}
	return append(payload, '\n'), nil
}

// ReadListsSnapshot parses and recompiles a snapshot, rejecting foreign
// files (ErrSnapshotFormat), unknown schema versions (ErrSnapshotVersion),
// corrupt files — bad checksum, torn length framing, or a sealed-version
// payload missing its trailer (errors wrap artifact.ErrCorrupt) — and
// snapshots whose rules no longer parse (they would silently change
// match decisions).
func ReadListsSnapshot(r io.Reader) (*ListsSnapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("abp: reading lists snapshot: %w", err)
	}
	return parseListsSnapshot(data)
}

// parseListsSnapshot decodes a snapshot in place: the returned lists (and
// their automata, for compiled snapshots) alias data, which therefore must
// stay live and unmodified for the snapshot's lifetime — true both for
// read-into-memory buffers and for mmap views.
func parseListsSnapshot(data []byte) (*ListsSnapshot, error) {
	payload, sealed, err := artifact.Open(data)
	if err != nil {
		return nil, fmt.Errorf("abp: lists snapshot: %w", err)
	}
	primary, sections, err := artifact.SplitSections(payload)
	if err != nil {
		return nil, fmt.Errorf("abp: lists snapshot: %w", err)
	}
	var doc listsSnapshotJSON
	if err := json.Unmarshal(primary, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if doc.Format != ListsSnapshotFormat {
		return nil, fmt.Errorf("%w: format %q", ErrSnapshotFormat, doc.Format)
	}
	if doc.Version < 1 || doc.Version > ListsSnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (supported: 1..%d)",
			ErrSnapshotVersion, doc.Version, ListsSnapshotVersion)
	}
	if doc.Version >= listsSnapshotSealedVersion && !sealed {
		return nil, fmt.Errorf("abp: lists snapshot: %w",
			artifact.Corruptf("missing-trailer",
				"version %d snapshot has no integrity trailer (truncated?)", doc.Version))
	}
	if doc.Version < listsSnapshotCompiledVersion && len(sections) > 0 {
		return nil, fmt.Errorf("abp: lists snapshot: %w",
			artifact.Corruptf("section-malformed",
				"version %d snapshot carries %d binary sections (schema allows none)",
				doc.Version, len(sections)))
	}
	autoByName := make(map[string][]byte, len(sections))
	for _, sec := range sections {
		autoByName[sec.Name] = sec.Data
	}
	out := &ListsSnapshot{
		Label:    doc.Label,
		Compiled: len(doc.Lists) > 0,
		Tiered:   len(doc.Lists) > 0 && doc.Version >= listsSnapshotTieredVersion,
	}
	for i, lj := range doc.Lists {
		rules := make([]*Rule, 0, len(lj.Rules))
		for _, line := range lj.Rules {
			rule, err := Parse(line)
			if err != nil {
				return nil, fmt.Errorf("abp: snapshot list %q: rule %q: %w", lj.Name, line, err)
			}
			rules = append(rules, rule)
		}
		hotB, hasHot := autoByName[hotSectionName(i)]
		coldB, hasCold := autoByName[coldSectionName(i)]
		switch {
		case doc.Version >= listsSnapshotTieredVersion && hasHot && hasCold:
			l, err := NewListTiered(lj.Name, rules, hotB, coldB)
			if err != nil {
				return nil, fmt.Errorf("abp: snapshot list %q: %w", lj.Name, err)
			}
			out.Lists = append(out.Lists, l)
		case hasHot != hasCold:
			// One tier section without its pair is a producer bug or a
			// damaged file, never a legitimate layout.
			return nil, fmt.Errorf("abp: lists snapshot: %w",
				artifact.Corruptf("section-malformed",
					"list %q carries only one of its tier sections", lj.Name))
		default:
			if auto, ok := autoByName[automatonSectionName(i)]; ok {
				l, err := NewListCompiled(lj.Name, rules, auto)
				if err != nil {
					return nil, fmt.Errorf("abp: snapshot list %q: %w", lj.Name, err)
				}
				out.Lists = append(out.Lists, l)
			} else {
				// A v3+ snapshot without this list's section (e.g. written
				// by a future producer that compiles selectively) still
				// loads; the automaton is rebuilt from the rules.
				out.Lists = append(out.Lists, NewList(lj.Name, rules))
				out.Compiled = false
			}
			out.Tiered = false
		}
	}
	return out, nil
}

// SaveListsSnapshot writes the snapshot to path atomically (temp file +
// rename) so hot-reloading readers never observe a torn file.
func SaveListsSnapshot(path string, s *ListsSnapshot) error {
	return saveListsSnapshot(path, s, WriteListsSnapshot)
}

// SaveListsSnapshotCompiled is SaveListsSnapshot in the version-3 compiled
// format (automaton sections included).
func SaveListsSnapshotCompiled(path string, s *ListsSnapshot) error {
	return saveListsSnapshot(path, s, WriteListsSnapshotCompiled)
}

// SaveListsSnapshotTiered is SaveListsSnapshot in the version-4 tiered
// format (hot/cold section pairs; every list must be tiered).
func SaveListsSnapshotTiered(path string, s *ListsSnapshot) error {
	return saveListsSnapshot(path, s, WriteListsSnapshotTiered)
}

func saveListsSnapshot(path string, s *ListsSnapshot, write func(io.Writer, *ListsSnapshot) error) error {
	tmp, err := os.CreateTemp(snapshotDir(path), ".lists-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadListsSnapshot reads and recompiles a snapshot from path.
func LoadListsSnapshot(path string) (*ListsSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadListsSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// OpenListsSnapshotMapped loads a snapshot by mapping the file read-only
// (portable read-into-memory fallback on platforms without mmap, or when
// the map fails). For compiled (v3) snapshots the lists' automata are
// served directly from the mapped pages — startup cost is rule parsing
// plus O(states) validation, never index construction, and concurrent
// replicas loading the same file share physical memory.
//
// The returned Closer unmaps the view. The snapshot and everything
// reached through it (lists, automata, match results' rule pointers stay
// valid — rules are parsed copies) must not be used after Close;
// conversely the Closer must be held for as long as the snapshot serves.
// Callers that cannot manage that lifetime (e.g. a hot-reload loop whose
// old snapshots wind down asynchronously, or one that must tolerate the
// file being truncated in place underneath it) should use
// LoadListsSnapshot/ReadListsSnapshot, which own their memory.
func OpenListsSnapshotMapped(path string) (*ListsSnapshot, io.Closer, error) {
	data, release, err := mapFile(path)
	if err != nil {
		return nil, nil, err
	}
	s, err := parseListsSnapshot(data)
	if err != nil {
		release()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, closerFunc(release), nil
}

// closerFunc adapts a release function to io.Closer.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// snapshotDir returns the directory containing path ("." for bare names),
// keeping the temp file on the same filesystem as the rename target.
func snapshotDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
