package abp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"adwars/internal/artifact"
)

// List snapshots freeze a set of compiled filter lists for the serving
// layer: adwars-lists -save-snapshot writes one, adwars-serve loads it and
// answers /v1/match from the compiled result. Rules are stored as their
// canonical source lines (Rule.Raw) and recompiled on load — Parse is
// deterministic, so a reloaded list matches byte-identically to the one
// that was saved (asserted by the round-trip tests).
//
// Since schema version 2 every snapshot is sealed with an artifact
// integrity trailer (CRC64 + payload length): torn writes and bit rot are
// rejected at load instead of silently changing match decisions.
// Version-1 files predate the trailer and still load.

const (
	// ListsSnapshotFormat is the format tag every lists snapshot carries.
	ListsSnapshotFormat = "adwars-lists"
	// ListsSnapshotVersion is the current snapshot schema version.
	ListsSnapshotVersion = 2
	// listsSnapshotSealedVersion is the first schema version that requires
	// an integrity trailer.
	listsSnapshotSealedVersion = 2
)

// ErrSnapshotFormat reports a file that is not a lists snapshot at all.
var ErrSnapshotFormat = errors.New("abp: not an adwars lists snapshot")

// ErrSnapshotVersion reports a snapshot written by an unknown (newer)
// schema version.
var ErrSnapshotVersion = errors.New("abp: unsupported lists snapshot version")

// ListsSnapshot is a set of compiled filter lists frozen for serving.
type ListsSnapshot struct {
	// Label optionally identifies the snapshot's provenance (e.g. the
	// crawl date the lists were taken from). Informational only.
	Label string
	// Lists are the compiled lists, ready for concurrent matching.
	Lists []*List
}

// Rules returns the total rule count across all lists.
func (s *ListsSnapshot) Rules() int {
	n := 0
	for _, l := range s.Lists {
		n += l.Len()
	}
	return n
}

type listJSON struct {
	Name  string   `json:"name"`
	Rules []string `json:"rules"`
}

type listsSnapshotJSON struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Label   string     `json:"label,omitempty"`
	Lists   []listJSON `json:"lists"`
}

// WriteListsSnapshot writes the snapshot to w in the current schema
// version, sealed with an integrity trailer.
func WriteListsSnapshot(w io.Writer, s *ListsSnapshot) error {
	doc := listsSnapshotJSON{
		Format:  ListsSnapshotFormat,
		Version: ListsSnapshotVersion,
		Label:   s.Label,
	}
	for _, l := range s.Lists {
		lj := listJSON{Name: l.Name, Rules: make([]string, 0, l.Len())}
		for _, r := range l.Rules() {
			lj.Rules = append(lj.Rules, r.Raw)
		}
		doc.Lists = append(doc.Lists, lj)
	}
	payload, err := json.Marshal(&doc)
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	_, err = w.Write(artifact.Seal(payload))
	return err
}

// ReadListsSnapshot parses and recompiles a snapshot, rejecting foreign
// files (ErrSnapshotFormat), unknown schema versions (ErrSnapshotVersion),
// corrupt files — bad checksum, torn length framing, or a sealed-version
// payload missing its trailer (errors wrap artifact.ErrCorrupt) — and
// snapshots whose rules no longer parse (they would silently change
// match decisions).
func ReadListsSnapshot(r io.Reader) (*ListsSnapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("abp: reading lists snapshot: %w", err)
	}
	payload, sealed, err := artifact.Open(data)
	if err != nil {
		return nil, fmt.Errorf("abp: lists snapshot: %w", err)
	}
	var doc listsSnapshotJSON
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if doc.Format != ListsSnapshotFormat {
		return nil, fmt.Errorf("%w: format %q", ErrSnapshotFormat, doc.Format)
	}
	if doc.Version < 1 || doc.Version > ListsSnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (supported: 1..%d)",
			ErrSnapshotVersion, doc.Version, ListsSnapshotVersion)
	}
	if doc.Version >= listsSnapshotSealedVersion && !sealed {
		return nil, fmt.Errorf("abp: lists snapshot: %w",
			artifact.Corruptf("missing-trailer",
				"version %d snapshot has no integrity trailer (truncated?)", doc.Version))
	}
	out := &ListsSnapshot{Label: doc.Label}
	for _, lj := range doc.Lists {
		rules := make([]*Rule, 0, len(lj.Rules))
		for _, line := range lj.Rules {
			rule, err := Parse(line)
			if err != nil {
				return nil, fmt.Errorf("abp: snapshot list %q: rule %q: %w", lj.Name, line, err)
			}
			rules = append(rules, rule)
		}
		out.Lists = append(out.Lists, NewList(lj.Name, rules))
	}
	return out, nil
}

// SaveListsSnapshot writes the snapshot to path atomically (temp file +
// rename) so hot-reloading readers never observe a torn file.
func SaveListsSnapshot(path string, s *ListsSnapshot) error {
	tmp, err := os.CreateTemp(snapshotDir(path), ".lists-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteListsSnapshot(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadListsSnapshot reads and recompiles a snapshot from path.
func LoadListsSnapshot(path string) (*ListsSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadListsSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// snapshotDir returns the directory containing path ("." for bare names),
// keeping the temp file on the same filesystem as the rename target.
func snapshotDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
