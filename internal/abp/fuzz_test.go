package abp

import "testing"

// FuzzMatchDifferential throws arbitrary (rule line, URL, page domain)
// triples at the three probe stages and fails on any divergence: the
// compiled automaton, the token-hash keyword index, and the index-free
// linear scan must return the same decision, the same winning rule, and the
// same all-matches slice. The fuzzed rule is compiled into a list alongside
// a fixed rule mix so candidate ordering, exception precedence, and the
// generic bucket are all exercised; the list's serialized automaton is also
// reattached via NewListCompiled to prove the round trip changes nothing.
// Tiered compiles of the same list — everything cold, everything hot, and an
// input-dependent mix — plus a tier round trip through NewListTiered are held
// to the same oracle, and the AppendHits/DecideHits serving path must agree
// with the plain verdict on every probe.
func FuzzMatchDifferential(f *testing.F) {
	f.Add("||pagefair.com^$third-party", "http://pagefair.com/score.js", "news.com")
	f.Add("/ads.js?", "http://numerama.com/ads.js?v=2", "numerama.com")
	f.Add("@@||numerama.com/ads.js", "http://numerama.com/ads.js?v=2", "numerama.com")
	f.Add("/detect*.js$script", "http://cdn.net/detect-v2.js", "site.com")
	f.Add("||example.com^", "http://user:pw@example.com/x", "page.com")
	f.Add("|http://x.com/a.js|", "http://x.com/a.js", "x.com")
	f.Add("/a*a*a*b", "http://x.com/aaaaaaac", "x.com")
	f.Add("/KKlvin", "http://x.com/KKlvin.js", "x.com") // Kelvin sign: non-ASCII fold
	f.Add("*^*", "http://x.com/", "x.com")

	fixed := []string{
		"||vendor.com^$third-party",
		"/ads.js?",
		"@@||benign.com/ads.js",
		"/detect007*.js$script",
		"||cdn.example^adsbygoogle^",
	}

	f.Fuzz(func(t *testing.T, line, url, page string) {
		lines := append(append([]string(nil), fixed...), line)
		var rules []*Rule
		for _, ln := range lines {
			if r, err := Parse(ln); err == nil {
				rules = append(rules, r)
			}
		}
		list := NewList("fuzz", rules)
		re, err := NewListCompiled("fuzz", rules, list.AutomatonBytes())
		if err != nil {
			t.Fatalf("round-trip rejected own bytes: %v", err)
		}

		q := Request{URL: url, Type: TypeScript, PageDomain: page}
		ld, lr := list.MatchRequestLinear(q)
		check := func(name string, d Decision, r *Rule) {
			if d != ld || r != lr {
				t.Fatalf("%s: rule %q url %q page %q: (%v, %v) != linear (%v, %v)",
					name, line, url, page, d, raw(r), ld, raw(lr))
			}
		}
		ad, ar := list.MatchRequest(q)
		check("automaton", ad, ar)
		td, tr := list.MatchRequestTokenIndex(q)
		check("token-index", td, tr)
		rd, rr := re.MatchRequest(q)
		check("reattached", rd, rr)

		allCold := list.CompileTiered(nil)
		allHot := list.CompileTiered(func(int) bool { return true })
		mixed := list.CompileTiered(func(ord int) bool { return (ord+len(url))%3 == 0 })
		tre, err := NewListTiered("fuzz", rules, mixed.AutomatonBytes(), mixed.ColdAutomatonBytes())
		if err != nil {
			t.Fatalf("tier round-trip rejected own bytes: %v", err)
		}
		tiered := []struct {
			name string
			l    *List
		}{
			{"tiered-cold", allCold},
			{"tiered-hot", allHot},
			{"tiered-mix", mixed},
			{"tiered-reattached", tre},
		}
		for _, tt := range tiered {
			d, r := tt.l.MatchRequest(q)
			check(tt.name, d, r)
			hd, hr, ord := DecideHits(tt.l.AppendHits(nil, q))
			check(tt.name+"-hits", hd, hr)
			if hr != nil && tt.l.Rules()[ord] != hr {
				t.Fatalf("%s: DecideHits ordinal %d does not index its winner", tt.name, ord)
			}
		}

		want := list.MatchingHTTPRulesLinear(q)
		for _, probe := range []struct {
			name string
			got  []*Rule
		}{
			{"automaton", list.MatchingHTTPRules(q)},
			{"token-index", list.MatchingHTTPRulesTokenIndex(q)},
			{"reattached", re.MatchingHTTPRules(q)},
			{"tiered-cold", allCold.MatchingHTTPRules(q)},
			{"tiered-mix", mixed.MatchingHTTPRules(q)},
			{"tiered-reattached", tre.MatchingHTTPRules(q)},
		} {
			if len(probe.got) != len(want) {
				t.Fatalf("%s all-matches: rule %q url %q: %d rules != linear %d",
					probe.name, line, url, len(probe.got), len(want))
			}
			for i := range probe.got {
				if probe.got[i] != want[i] {
					t.Fatalf("%s all-matches: rule %q url %q: rule %d %q != %q",
						probe.name, line, url, i, probe.got[i].Raw, want[i].Raw)
				}
			}
		}
	})
}

func raw(r *Rule) string {
	if r == nil {
		return "<nil>"
	}
	return r.Raw
}
