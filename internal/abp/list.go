package abp

import (
	"sort"
)

// Decision is the outcome of matching a request against a List.
type Decision int

const (
	// NoMatch means no rule in the list matched the request.
	NoMatch Decision = iota
	// Blocked means a blocking rule matched and no exception overrode it.
	Blocked
	// Allowed means an exception rule matched (overriding any block).
	Allowed
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Blocked:
		return "blocked"
	case Allowed:
		return "allowed"
	default:
		return "no-match"
	}
}

// List is a compiled filter list: rules split by kind, with a keyword index
// over HTTP rules and a selector-id index over element hiding rules so that
// matching inspects only a few candidates. Build lists with NewList; every
// rule matcher is precompiled there, so a List is safe for concurrent
// readers — nothing is written after NewList returns.
type List struct {
	// Name identifies the list (e.g. "Anti-Adblock Killer").
	Name string

	rules      []*Rule
	blockIdx   *keywordIndex
	exceptIdx  *keywordIndex
	elemHide   []*Rule
	elemExcept []*Rule

	// hideIdx buckets elemHide by required selector id.
	hideIdx hideIndex
	// hideToggles are the @@…$elemhide / $generichide exception rules,
	// pre-filtered so ElemHideDisabled does not rescan the whole list.
	hideToggles []*Rule
}

// NewList compiles a set of parsed rules into a matchable list. Comment and
// invalid rules are ignored. Every rule's URL matcher is precompiled here
// (idempotent for rules built by Parse), which is what makes the returned
// List read-only and therefore safe for concurrent matchers.
func NewList(name string, rules []*Rule) *List {
	l := &List{
		Name:      name,
		blockIdx:  newKeywordIndex(),
		exceptIdx: newKeywordIndex(),
	}
	for _, r := range rules {
		switch r.Kind {
		case KindHTTPBlock, KindHTTPException, KindElemHide, KindElemHideException:
		default:
			continue
		}
		r.Precompile()
		ord := len(l.rules)
		l.rules = append(l.rules, r)
		switch r.Kind {
		case KindHTTPBlock:
			l.blockIdx.add(r, ord)
		case KindHTTPException:
			l.exceptIdx.add(r, ord)
			if r.DisableElemHide || r.DisableGenericHide {
				l.hideToggles = append(l.hideToggles, r)
			}
		case KindElemHide:
			l.hideIdx.add(r, len(l.elemHide))
			l.elemHide = append(l.elemHide, r)
		case KindElemHideException:
			l.elemExcept = append(l.elemExcept, r)
		}
	}
	return l
}

// ParseAndBuild parses a filter list body and compiles it in one step,
// returning the list together with any per-line parse errors.
func ParseAndBuild(name, body string) (*List, []error) {
	rules, errs := ParseList(body)
	return NewList(name, rules), errs
}

// Len returns the number of compiled (non-comment) rules.
func (l *List) Len() int { return len(l.rules) }

// Rules returns the compiled rules in insertion order. The returned slice
// must not be modified.
func (l *List) Rules() []*Rule { return l.rules }

// MatchRequest evaluates the request against the list. Exception rules
// override blocking rules, mirroring adblocker semantics. The rule that
// determined the decision is returned (nil for NoMatch).
func (l *List) MatchRequest(q Request) (Decision, *Rule) {
	c := newMatchCtx(q)
	if r := l.exceptIdx.match(&c); r != nil {
		return Allowed, r
	}
	if r := l.blockIdx.match(&c); r != nil {
		return Blocked, r
	}
	return NoMatch, nil
}

// MatchRequestLinear is MatchRequest without the keyword index: every HTTP
// rule is tried in insertion order. It exists as the ablation baseline for
// benchmarks and the differential tests that prove the index changes
// nothing; production paths use MatchRequest.
func (l *List) MatchRequestLinear(q Request) (Decision, *Rule) {
	c := newMatchCtx(q)
	for _, r := range l.rules {
		if r.Kind == KindHTTPException && r.matchCtx(&c) {
			return Allowed, r
		}
	}
	for _, r := range l.rules {
		if r.Kind == KindHTTPBlock && r.matchCtx(&c) {
			return Blocked, r
		}
	}
	return NoMatch, nil
}

// MatchingHTTPRules returns every HTTP rule (blocking and exception) that
// matches the request, in insertion order. The coverage measurement uses
// this to record which rules triggered on a crawl. The lookup goes through
// the keyword index in all-matches mode: each rule lives in exactly one
// bucket, so collecting the matching buckets and sorting by insertion
// ordinal reproduces the linear scan's output exactly (see
// MatchingHTTPRulesLinear and the differential tests).
func (l *List) MatchingHTTPRules(q Request) []*Rule {
	c := newMatchCtx(q)
	var hits []indexedRule
	hits = l.exceptIdx.appendMatches(&c, hits)
	hits = l.blockIdx.appendMatches(&c, hits)
	if len(hits) == 0 {
		return nil
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].ord < hits[j].ord })
	out := make([]*Rule, len(hits))
	for i, h := range hits {
		out[i] = h.r
	}
	return out
}

// MatchingHTTPRulesLinear is the index-free reference implementation of
// MatchingHTTPRules, kept as the ablation baseline for benchmarks and the
// differential tests.
func (l *List) MatchingHTTPRulesLinear(q Request) []*Rule {
	c := newMatchCtx(q)
	var out []*Rule
	for _, r := range l.rules {
		if r.IsHTTP() && r.matchCtx(&c) {
			out = append(out, r)
		}
	}
	return out
}

// ElemHideDisabled reports whether an @@…$elemhide exception rule turns
// element hiding off for pages on the domain; genericOnly additionally
// reports $generichide (only domain-less hiding rules disabled).
func (l *List) ElemHideDisabled(pageDomain string) (all, genericOnly bool) {
	if len(l.hideToggles) == 0 {
		return false, false
	}
	q := Request{
		URL:        "http://" + pageDomain + "/",
		Type:       TypeDocument,
		PageDomain: pageDomain,
	}
	c := newMatchCtx(q)
	for _, r := range l.hideToggles {
		if r.matchCtx(&c) {
			if r.DisableElemHide {
				all = true
			}
			if r.DisableGenericHide {
				genericOnly = true
			}
		}
	}
	return all, genericOnly
}

// HiddenElements returns, for a page on the given domain, the indexes of
// elements that element hiding rules would hide, together with the rule
// that hides each. Element-hiding exception rules unhide matching
// elements; $elemhide / $generichide exceptions disable hiding wholesale.
func (l *List) HiddenElements(pageDomain string, elems []*Element) map[int]*Rule {
	allOff, genericOff := l.ElemHideDisabled(pageDomain)
	if allOff {
		return map[int]*Rule{}
	}
	hidden := make(map[int]*Rule)
	if len(l.elemHide) == 0 || len(elems) == 0 {
		return hidden
	}
	// The domain scope of a hiding rule depends only on (rule, pageDomain):
	// resolve each rule's applicability at most once per call instead of
	// once per (rule, element) pair.
	applies := domainMemo{domain: pageDomain}
	for i, e := range elems {
		hideRule := l.hideIdx.firstMatch(l.elemHide, e, genericOff, &applies)
		if hideRule == nil {
			continue
		}
		excepted := false
		for _, r := range l.elemExcept {
			if r.appliesOn(pageDomain) && r.Selector.Match(e) {
				excepted = true
				break
			}
		}
		if !excepted {
			hidden[i] = hideRule
		}
	}
	return hidden
}

// domainMemo caches appliesOn verdicts per rule ordinal for one page.
type domainMemo struct {
	domain string
	known  []int8 // 0 unknown, 1 applies, -1 does not
}

func (m *domainMemo) appliesOn(rules []*Rule, ord int) bool {
	if m.known == nil {
		m.known = make([]int8, len(rules))
	}
	switch m.known[ord] {
	case 1:
		return true
	case -1:
		return false
	}
	if rules[ord].appliesOn(m.domain) {
		m.known[ord] = 1
		return true
	}
	m.known[ord] = -1
	return false
}

// hideIndex buckets element hiding rules by the id their selector demands.
// A selector with a required #id can only match elements carrying exactly
// that id, so per element only its id bucket plus the id-less bucket need
// scanning. Ordinals into the elemHide slice keep first-match-in-insertion-
// order semantics when the two buckets are merged.
type hideIndex struct {
	byID map[string][]int
	noID []int
}

func (h *hideIndex) add(r *Rule, ord int) {
	if id := r.Selector.IndexKey(); id != "" {
		if h.byID == nil {
			h.byID = make(map[string][]int)
		}
		h.byID[id] = append(h.byID[id], ord)
		return
	}
	h.noID = append(h.noID, ord)
}

// firstMatch returns the first hiding rule (in insertion order) matching
// the element, honoring $generichide and domain scoping.
func (h *hideIndex) firstMatch(rules []*Rule, e *Element, genericOff bool, applies *domainMemo) *Rule {
	var withID []int
	if e.ID != "" {
		withID = h.byID[e.ID]
	}
	// Merge the two ordinal streams in ascending order.
	i, j := 0, 0
	for i < len(withID) || j < len(h.noID) {
		var ord int
		if j >= len(h.noID) || (i < len(withID) && withID[i] < h.noID[j]) {
			ord = withID[i]
			i++
		} else {
			ord = h.noID[j]
			j++
		}
		r := rules[ord]
		if genericOff && !r.HasDomainTag() {
			continue
		}
		if applies.appliesOn(rules, ord) && r.Selector.Match(e) {
			return r
		}
	}
	return nil
}

// appliesOn reports whether an element hiding rule is active on a page
// domain, honoring the rule's domain prefix and ~negations.
func (r *Rule) appliesOn(pageDomain string) bool {
	if len(r.Domains) > 0 {
		ok := false
		for _, d := range r.Domains {
			if domainWithin(pageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.NotDomains {
		if domainWithin(pageDomain, d) {
			return false
		}
	}
	return true
}

// CountByClass tallies the list's rules by Figure 1 class.
func (l *List) CountByClass() map[Class]int {
	out := make(map[Class]int, len(AllClasses))
	for _, r := range l.rules {
		out[r.Class()]++
	}
	return out
}

// Domains returns the sorted set of domains targeted by any rule in the
// list (per Rule.TargetDomains). This feeds the §3.3 domain-overlap and
// Table 1 / Figure 2 analyses.
func (l *List) Domains() []string {
	seen := make(map[string]bool)
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			seen[d] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ExceptionDomainSplit returns the sets of domains that appear in exception
// rules and in non-exception rules (a domain can appear in both). §3.3 uses
// the ratio of the two set sizes.
func (l *List) ExceptionDomainSplit() (exception, nonException []string) {
	exc := make(map[string]bool)
	non := make(map[string]bool)
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			if r.IsException() {
				exc[d] = true
			} else {
				non[d] = true
			}
		}
	}
	for d := range exc {
		exception = append(exception, d)
	}
	for d := range non {
		nonException = append(nonException, d)
	}
	sort.Strings(exception)
	sort.Strings(nonException)
	return exception, nonException
}

// indexedRule pairs a rule with its insertion ordinal in the List, so
// all-matches index lookups can restore insertion order.
type indexedRule struct {
	r   *Rule
	ord int
}

// keywordIndex buckets HTTP rules by the token-safe keyword drawn from
// their pattern (Rule.Keyword). A lookup tokenizes the request URL once and
// hash-probes each token's bucket, so per-request cost tracks the URL's
// token count rather than the list's keyword count. Rules without a usable
// keyword go into a generic bucket that is always scanned. Each rule lives
// in exactly one bucket and URL tokens are deduplicated, so no bucket is
// visited twice.
type keywordIndex struct {
	byKeyword map[string][]indexedRule
	generic   []indexedRule
}

func newKeywordIndex() *keywordIndex {
	return &keywordIndex{byKeyword: make(map[string][]indexedRule)}
}

func (idx *keywordIndex) add(r *Rule, ord int) {
	kw := r.Keyword()
	if kw == "" {
		idx.generic = append(idx.generic, indexedRule{r, ord})
		return
	}
	idx.byKeyword[kw] = append(idx.byKeyword[kw], indexedRule{r, ord})
}

// match returns the first matching rule in token-scan order (which rule
// wins is irrelevant to the Decision; any match settles it). The URL's
// token runs are walked inline rather than materialized: a duplicate token
// merely re-probes a bucket whose rules already failed, so no
// deduplication (and no allocation) is needed on this path.
func (idx *keywordIndex) match(c *matchCtx) *Rule {
	if len(idx.byKeyword) > 0 {
		s := c.lowered
		for i := 0; i < len(s); {
			if !keywordChar(s[i]) {
				i++
				continue
			}
			j := i + 1
			for j < len(s) && keywordChar(s[j]) {
				j++
			}
			if j-i >= 3 {
				for _, ir := range idx.byKeyword[s[i:j]] {
					if ir.r.matchCtx(c) {
						return ir.r
					}
				}
			}
			i = j
		}
	}
	for _, ir := range idx.generic {
		if ir.r.matchCtx(c) {
			return ir.r
		}
	}
	return nil
}

// appendMatches collects every matching rule into out (all-matches mode).
// Buckets are disjoint, but a token that occurs twice in the URL probes its
// bucket twice, so matches are deduplicated by ordinal against this call's
// own output (the matching set is tiny); callers sort by ordinal to restore
// insertion order.
func (idx *keywordIndex) appendMatches(c *matchCtx, out []indexedRule) []indexedRule {
	base := len(out)
	if len(idx.byKeyword) > 0 {
		s := c.lowered
		for i := 0; i < len(s); {
			if !keywordChar(s[i]) {
				i++
				continue
			}
			j := i + 1
			for j < len(s) && keywordChar(s[j]) {
				j++
			}
			if j-i >= 3 {
			bucket:
				for _, ir := range idx.byKeyword[s[i:j]] {
					if !ir.r.matchCtx(c) {
						continue
					}
					for _, seen := range out[base:] {
						if seen.ord == ir.ord {
							continue bucket
						}
					}
					out = append(out, ir)
				}
			}
			i = j
		}
	}
	for _, ir := range idx.generic {
		if ir.r.matchCtx(c) {
			out = append(out, ir)
		}
	}
	return out
}
