package abp

import (
	"sort"
	"strings"
)

// Decision is the outcome of matching a request against a List.
type Decision int

const (
	// NoMatch means no rule in the list matched the request.
	NoMatch Decision = iota
	// Blocked means a blocking rule matched and no exception overrode it.
	Blocked
	// Allowed means an exception rule matched (overriding any block).
	Allowed
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Blocked:
		return "blocked"
	case Allowed:
		return "allowed"
	default:
		return "no-match"
	}
}

// List is a compiled filter list: rules split by kind, with a keyword index
// over HTTP rules so that matching a URL inspects only a few candidates.
// Build lists with NewList; a List is safe for concurrent readers.
type List struct {
	// Name identifies the list (e.g. "Anti-Adblock Killer").
	Name string

	rules      []*Rule
	blockIdx   *keywordIndex
	exceptIdx  *keywordIndex
	elemHide   []*Rule
	elemExcept []*Rule
}

// NewList compiles a set of parsed rules into a matchable list. Comment and
// invalid rules are ignored.
func NewList(name string, rules []*Rule) *List {
	l := &List{
		Name:      name,
		blockIdx:  newKeywordIndex(),
		exceptIdx: newKeywordIndex(),
	}
	for _, r := range rules {
		switch r.Kind {
		case KindHTTPBlock:
			l.blockIdx.add(r)
		case KindHTTPException:
			l.exceptIdx.add(r)
		case KindElemHide:
			l.elemHide = append(l.elemHide, r)
		case KindElemHideException:
			l.elemExcept = append(l.elemExcept, r)
		default:
			continue
		}
		l.rules = append(l.rules, r)
	}
	return l
}

// ParseAndBuild parses a filter list body and compiles it in one step,
// returning the list together with any per-line parse errors.
func ParseAndBuild(name, body string) (*List, []error) {
	rules, errs := ParseList(body)
	return NewList(name, rules), errs
}

// Len returns the number of compiled (non-comment) rules.
func (l *List) Len() int { return len(l.rules) }

// Rules returns the compiled rules in insertion order. The returned slice
// must not be modified.
func (l *List) Rules() []*Rule { return l.rules }

// MatchRequest evaluates the request against the list. Exception rules
// override blocking rules, mirroring adblocker semantics. The rule that
// determined the decision is returned (nil for NoMatch).
func (l *List) MatchRequest(q Request) (Decision, *Rule) {
	if r := l.exceptIdx.match(q); r != nil {
		return Allowed, r
	}
	if r := l.blockIdx.match(q); r != nil {
		return Blocked, r
	}
	return NoMatch, nil
}

// MatchingHTTPRules returns every HTTP rule (blocking and exception) that
// matches the request, in insertion order. The coverage measurement uses
// this to record which rules triggered on a crawl.
func (l *List) MatchingHTTPRules(q Request) []*Rule {
	var out []*Rule
	for _, r := range l.rules {
		if r.IsHTTP() && r.MatchRequest(q) {
			out = append(out, r)
		}
	}
	return out
}

// ElemHideDisabled reports whether an @@…$elemhide exception rule turns
// element hiding off for pages on the domain; genericOnly additionally
// reports $generichide (only domain-less hiding rules disabled).
func (l *List) ElemHideDisabled(pageDomain string) (all, genericOnly bool) {
	q := Request{
		URL:        "http://" + pageDomain + "/",
		Type:       TypeDocument,
		PageDomain: pageDomain,
	}
	for _, r := range l.rules {
		if r.Kind != KindHTTPException || (!r.DisableElemHide && !r.DisableGenericHide) {
			continue
		}
		if r.MatchRequest(q) {
			if r.DisableElemHide {
				all = true
			}
			if r.DisableGenericHide {
				genericOnly = true
			}
		}
	}
	return all, genericOnly
}

// HiddenElements returns, for a page on the given domain, the indexes of
// elements that element hiding rules would hide, together with the rule
// that hides each. Element-hiding exception rules unhide matching
// elements; $elemhide / $generichide exceptions disable hiding wholesale.
func (l *List) HiddenElements(pageDomain string, elems []*Element) map[int]*Rule {
	allOff, genericOff := l.ElemHideDisabled(pageDomain)
	if allOff {
		return map[int]*Rule{}
	}
	hidden := make(map[int]*Rule)
	for i, e := range elems {
		var hideRule *Rule
		for _, r := range l.elemHide {
			if genericOff && !r.HasDomainTag() {
				continue
			}
			if r.appliesOn(pageDomain) && r.Selector.Match(e) {
				hideRule = r
				break
			}
		}
		if hideRule == nil {
			continue
		}
		excepted := false
		for _, r := range l.elemExcept {
			if r.appliesOn(pageDomain) && r.Selector.Match(e) {
				excepted = true
				break
			}
		}
		if !excepted {
			hidden[i] = hideRule
		}
	}
	return hidden
}

// appliesOn reports whether an element hiding rule is active on a page
// domain, honoring the rule's domain prefix and ~negations.
func (r *Rule) appliesOn(pageDomain string) bool {
	if len(r.Domains) > 0 {
		ok := false
		for _, d := range r.Domains {
			if domainWithin(pageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.NotDomains {
		if domainWithin(pageDomain, d) {
			return false
		}
	}
	return true
}

// CountByClass tallies the list's rules by Figure 1 class.
func (l *List) CountByClass() map[Class]int {
	out := make(map[Class]int, len(AllClasses))
	for _, r := range l.rules {
		out[r.Class()]++
	}
	return out
}

// Domains returns the sorted set of domains targeted by any rule in the
// list (per Rule.TargetDomains). This feeds the §3.3 domain-overlap and
// Table 1 / Figure 2 analyses.
func (l *List) Domains() []string {
	seen := make(map[string]bool)
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			seen[d] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ExceptionDomainSplit returns the sets of domains that appear in exception
// rules and in non-exception rules (a domain can appear in both). §3.3 uses
// the ratio of the two set sizes.
func (l *List) ExceptionDomainSplit() (exception, nonException []string) {
	exc := make(map[string]bool)
	non := make(map[string]bool)
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			if r.IsException() {
				exc[d] = true
			} else {
				non[d] = true
			}
		}
	}
	for d := range exc {
		exception = append(exception, d)
	}
	for d := range non {
		nonException = append(nonException, d)
	}
	sort.Strings(exception)
	sort.Strings(nonException)
	return exception, nonException
}

// keywordIndex buckets HTTP rules by a literal keyword drawn from their
// pattern. Rules without a usable keyword go into a generic bucket that is
// always scanned. The same scheme real adblockers use to keep per-request
// work small.
type keywordIndex struct {
	byKeyword map[string][]*Rule
	generic   []*Rule
	keywords  []string // sorted, for deterministic scans
}

func newKeywordIndex() *keywordIndex {
	return &keywordIndex{byKeyword: make(map[string][]*Rule)}
}

func (idx *keywordIndex) add(r *Rule) {
	kw := r.Keyword()
	if kw == "" {
		idx.generic = append(idx.generic, r)
		return
	}
	if _, ok := idx.byKeyword[kw]; !ok {
		idx.keywords = append(idx.keywords, kw)
		sort.Strings(idx.keywords)
	}
	idx.byKeyword[kw] = append(idx.byKeyword[kw], r)
}

func (idx *keywordIndex) match(q Request) *Rule {
	u := strings.ToLower(q.URL)
	for _, kw := range idx.keywords {
		if !strings.Contains(u, kw) {
			continue
		}
		for _, r := range idx.byKeyword[kw] {
			if r.MatchRequest(q) {
				return r
			}
		}
	}
	for _, r := range idx.generic {
		if r.MatchRequest(q) {
			return r
		}
	}
	return nil
}
