package abp

import (
	"sort"
	"sync"
)

// Decision is the outcome of matching a request against a List.
type Decision int

const (
	// NoMatch means no rule in the list matched the request.
	NoMatch Decision = iota
	// Blocked means a blocking rule matched and no exception overrode it.
	Blocked
	// Allowed means an exception rule matched (overriding any block).
	Allowed
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Blocked:
		return "blocked"
	case Allowed:
		return "allowed"
	default:
		return "no-match"
	}
}

// List is a compiled filter list: rules split by kind, with an Aho–Corasick
// automaton over HTTP-rule keywords as the probe stage (the token-hash
// keyword index is kept as a differential baseline and as the fallback for
// the rare non-ASCII URL), and a selector-id index over element hiding
// rules so that matching inspects only a few candidates. Build lists with
// NewList (compiles the automaton) or NewListCompiled (attaches a
// serialized one); every rule matcher is precompiled there, so a List is
// safe for concurrent readers — nothing is written after construction.
type List struct {
	// Name identifies the list (e.g. "Anti-Adblock Killer").
	Name string

	rules    []*Rule
	auto     *automaton
	rulesCRC uint64

	// Tiered lists (see tier.go) keep the hot automaton in auto and the
	// cold fallback here: the decision path probes cold only when the hot
	// tier cannot conclude the verdict on its own. hot marks each
	// ordinal's tier and coldMinBlk is the lowest cold ordinal — a hot
	// block below it cannot be outranked by any cold rule. All nil/zero
	// for untiered lists.
	cold       *automaton
	hot        []bool
	coldMinBlk uint32

	// usage, when enabled, counts match verdicts per rule ordinal. Nil
	// (and therefore free) unless EnableUsage was called before serving.
	usage *Usage

	// The token-hash indexes are built lazily (tokenIndexes): the
	// automaton serves every ASCII URL, so most processes never touch
	// them, and skipping their construction is what keeps a compiled
	// snapshot's load cost at attach-and-validate.
	tokenOnce sync.Once
	blockIdx  *keywordIndex
	exceptIdx *keywordIndex

	elemHide   []*Rule
	elemExcept []*Rule

	// hideIdx buckets elemHide by required selector id.
	hideIdx hideIndex
	// hideToggles are the @@…$elemhide / $generichide exception rules,
	// pre-filtered so ElemHideDisabled does not rescan the whole list.
	hideToggles []*Rule
}

// NewList compiles a set of parsed rules into a matchable list. Comment and
// invalid rules are ignored. Every rule's URL matcher is precompiled here
// (idempotent for rules built by Parse), which is what makes the returned
// List read-only and therefore safe for concurrent matchers.
func NewList(name string, rules []*Rule) *List {
	l, err := newList(name, rules, nil)
	if err != nil {
		// Unreachable: with no serialized region there is nothing to
		// validate, and a freshly built automaton panics internally rather
		// than returning an error.
		panic(err)
	}
	return l
}

// NewListCompiled is NewList for a snapshot load path that carries a
// serialized automaton region: instead of rebuilding the probe automaton
// from the rules (O(rules·keyword)), the region is validated and attached
// (O(states) bounds checks over memory that may be an mmap view). The
// region must have been compiled from exactly these rules — a checksum
// mismatch or any structural damage is refused with an error wrapping
// artifact.ErrCorrupt.
func NewListCompiled(name string, rules []*Rule, auto []byte) (*List, error) {
	return newList(name, rules, auto)
}

func newList(name string, rules []*Rule, auto []byte) (*List, error) {
	l := &List{Name: name}
	for _, r := range rules {
		switch r.Kind {
		case KindHTTPBlock, KindHTTPException, KindElemHide, KindElemHideException:
		default:
			continue
		}
		r.Precompile()
		l.rules = append(l.rules, r)
		switch r.Kind {
		case KindHTTPException:
			if r.DisableElemHide || r.DisableGenericHide {
				l.hideToggles = append(l.hideToggles, r)
			}
		case KindElemHide:
			l.hideIdx.add(r, len(l.elemHide))
			l.elemHide = append(l.elemHide, r)
		case KindElemHideException:
			l.elemExcept = append(l.elemExcept, r)
		}
	}
	l.rulesCRC = rulesChecksum(l.rules)
	if auto == nil {
		l.auto = buildAutomaton(l.rules, l.rulesCRC)
	} else {
		a, err := openAutomaton(auto, len(l.rules), l.rulesCRC)
		if err != nil {
			return nil, err
		}
		l.auto = a
	}
	return l, nil
}

// tokenIndexes returns the token-hash keyword indexes, building them on
// first use. The sync.Once keeps the List safe for concurrent matchers:
// the build races nothing, and every reader observes fully built indexes.
func (l *List) tokenIndexes() (block, except *keywordIndex) {
	l.tokenOnce.Do(func() {
		b, e := newKeywordIndex(), newKeywordIndex()
		for ord, r := range l.rules {
			switch r.Kind {
			case KindHTTPBlock:
				b.add(r, ord)
			case KindHTTPException:
				e.add(r, ord)
			}
		}
		l.blockIdx, l.exceptIdx = b, e
	})
	return l.blockIdx, l.exceptIdx
}

// AutomatonBytes returns the list's compiled automaton as its contiguous
// serialized region — the exact bytes NewListCompiled accepts. The slice
// aliases the list's automaton and must not be modified.
func (l *List) AutomatonBytes() []byte { return l.auto.Bytes() }

// ParseAndBuild parses a filter list body and compiles it in one step,
// returning the list together with any per-line parse errors.
func ParseAndBuild(name, body string) (*List, []error) {
	rules, errs := ParseList(body)
	return NewList(name, rules), errs
}

// Len returns the number of compiled (non-comment) rules.
func (l *List) Len() int { return len(l.rules) }

// Rules returns the compiled rules in insertion order. The returned slice
// must not be modified.
func (l *List) Rules() []*Rule { return l.rules }

// MatchRequest evaluates the request against the list. Exception rules
// override blocking rules, mirroring adblocker semantics. The rule that
// determined the decision is returned (nil for NoMatch): the first
// matching exception in insertion order, else the first matching block in
// insertion order — the same rule MatchRequestLinear returns.
//
// The probe stage is the compiled automaton: one case-folded scan of the
// raw URL yields every candidate rule ordinal into stack scratch, so the
// common no-match lookup performs zero heap allocations. Non-ASCII URLs
// (where byte-wise case folding is unsound) take the token-index path
// instead, which matches on a properly lowered copy. On a tiered list the
// cold automaton is probed only when the hot tier cannot conclude the
// verdict (see matchVerdictCtx). When usage counters are enabled the
// winning rule's ordinal is recorded — an atomic add, no allocation.
func (l *List) MatchRequest(q Request) (Decision, *Rule) {
	c := newMatchCtx(q)
	d, r, ord := l.matchVerdictCtx(&c)
	if u := l.usage; u != nil {
		u.record(ord)
	}
	return d, r
}

// matchVerdictCtx is the decision core shared by MatchRequest: it returns
// the verdict, the winning rule, and that rule's ordinal (-1 for
// NoMatch).
//
// Tiered lists resolve in two stages. The hot probe alone settles the
// verdict when (a) an exception matches — every exception rule lives in
// the hot tier by construction, so the first matching hot exception is
// the globally first one — or (b) a hot block matches with an ordinal
// below coldMinBlk, which no cold rule can outrank. Otherwise the cold
// automaton is probed for a block with a lower ordinal than the hot
// winner. That staging is what the compaction loop buys: with ≥95% of
// winning rules in the hot tier, most verdicts never touch the cold
// automaton's memory.
func (l *List) matchVerdictCtx(c *matchCtx) (Decision, *Rule, int) {
	cands, ok := l.auto.collect(c)
	if !ok {
		return l.matchTokenIndexCtx(c)
	}
	for _, ord := range cands {
		if r := l.rules[ord]; r.Kind == KindHTTPException && r.matchCtx(c) {
			return Allowed, r, int(ord)
		}
	}
	win := -1
	for _, ord := range cands {
		if r := l.rules[ord]; r.Kind == KindHTTPBlock && r.matchCtx(c) {
			win = int(ord)
			break
		}
	}
	if l.cold != nil && !(win >= 0 && uint32(win) < l.coldMinBlk) {
		// The URL already scanned clean (ASCII) through the hot automaton,
		// so the cold scan cannot report !ok. The hot candidates in the
		// scratch are no longer needed — only win survives — so a plain
		// collect (which resets the scratch) is safe here.
		cands, _ = l.cold.collect(c)
		for _, ord := range cands {
			if win >= 0 && int(ord) >= win {
				break
			}
			// Cold rules are all blocking rules (attachCold enforces it).
			if r := l.rules[ord]; r.matchCtx(c) {
				win = int(ord)
				break
			}
		}
	}
	if win >= 0 {
		return Blocked, l.rules[win], win
	}
	return NoMatch, nil, -1
}

// collectAllCtx gathers the candidate ordinals for the all-matches paths:
// both tiers of a tiered list are scanned into one scratch and sorted
// once, so verification walks the combined set in insertion order exactly
// as on an untiered list. ok=false routes non-ASCII URLs to the token
// index.
func (l *List) collectAllCtx(c *matchCtx) ([]uint32, bool) {
	c.resetCands()
	if !l.auto.scanInto(c) {
		return nil, false
	}
	if l.cold != nil {
		l.cold.scanInto(c)
	}
	return c.sortedCands(), true
}

// MatchRequestTokenIndex is MatchRequest served by the token-hash keyword
// index instead of the automaton. It is kept as a differential baseline
// for the automaton (see FuzzMatchDifferential) and as the fallback
// MatchRequest takes for non-ASCII URLs; production callers use
// MatchRequest.
func (l *List) MatchRequestTokenIndex(q Request) (Decision, *Rule) {
	c := newMatchCtx(q)
	d, r, _ := l.matchTokenIndexCtx(&c)
	return d, r
}

func (l *List) matchTokenIndexCtx(c *matchCtx) (Decision, *Rule, int) {
	// Buckets are probed in token-scan order, so the lowest ordinal among
	// the matches is taken explicitly — that is the rule the linear scan
	// returns, which keeps this path interchangeable with the automaton in
	// the differential tests.
	blockIdx, exceptIdx := l.tokenIndexes()
	var scratch [matchScratchCap]indexedRule
	if r, ord := firstByOrdinal(exceptIdx.appendMatches(c, scratch[:0])); r != nil {
		return Allowed, r, ord
	}
	if r, ord := firstByOrdinal(blockIdx.appendMatches(c, scratch[:0])); r != nil {
		return Blocked, r, ord
	}
	return NoMatch, nil, -1
}

// firstByOrdinal returns the matched rule with the lowest insertion
// ordinal and that ordinal, or (nil, -1) for an empty set.
func firstByOrdinal(hits []indexedRule) (*Rule, int) {
	var best *Rule
	bestOrd := -1
	for _, h := range hits {
		if best == nil || h.ord < bestOrd {
			best, bestOrd = h.r, h.ord
		}
	}
	return best, bestOrd
}

// MatchRequestLinear is MatchRequest without the keyword index: every HTTP
// rule is tried in insertion order. It exists as the ablation baseline for
// benchmarks and the differential tests that prove the index changes
// nothing; production paths use MatchRequest.
func (l *List) MatchRequestLinear(q Request) (Decision, *Rule) {
	c := newMatchCtx(q)
	for _, r := range l.rules {
		if r.Kind == KindHTTPException && r.matchCtx(&c) {
			return Allowed, r
		}
	}
	for _, r := range l.rules {
		if r.Kind == KindHTTPBlock && r.matchCtx(&c) {
			return Blocked, r
		}
	}
	return NoMatch, nil
}

// MatchingHTTPRules returns every HTTP rule (blocking and exception) that
// matches the request, in insertion order. The coverage measurement uses
// this to record which rules triggered on a crawl. It is
// AppendMatchingHTTPRules with a fresh result slice; hot callers (the
// serving data plane) pass their own reusable buffer instead.
func (l *List) MatchingHTTPRules(q Request) []*Rule {
	return l.AppendMatchingHTTPRules(nil, q)
}

// AppendMatchingHTTPRules appends every matching HTTP rule to dst in
// insertion order and returns the extended slice. The automaton's
// candidates arrive already sorted by insertion ordinal (a tiered list
// scans both tiers into one candidate set first), so verified matches
// append in linear-scan order directly — no sort, and with a pre-sized
// dst no allocation at all. Non-ASCII URLs fall back to the token index.
func (l *List) AppendMatchingHTTPRules(dst []*Rule, q Request) []*Rule {
	c := newMatchCtx(q)
	cands, ok := l.collectAllCtx(&c)
	if !ok {
		return l.appendMatchingTokenIndexCtx(&c, dst)
	}
	for _, ord := range cands {
		if r := l.rules[ord]; r.matchCtx(&c) {
			dst = append(dst, r)
		}
	}
	return dst
}

// Hit is one matching HTTP rule together with its insertion ordinal in
// the list — the currency of the serving data plane, which needs the
// ordinal both to derive the winning rule (DecideHits) and to record
// usage (RecordUsage) without re-probing the list.
type Hit struct {
	Rule *Rule
	Ord  int
}

// AppendHits is AppendMatchingHTTPRules carrying ordinals: every matching
// HTTP rule is appended to dst in insertion order. One AppendHits pass
// gives a caller the full matched set AND — via DecideHits — the exact
// verdict MatchRequest would return, so the serving layer probes each
// list once per request instead of twice.
func (l *List) AppendHits(dst []Hit, q Request) []Hit {
	c := newMatchCtx(q)
	cands, ok := l.collectAllCtx(&c)
	if !ok {
		return l.appendHitsTokenIndexCtx(&c, dst)
	}
	for _, ord := range cands {
		if r := l.rules[ord]; r.matchCtx(&c) {
			dst = append(dst, Hit{r, int(ord)})
		}
	}
	return dst
}

// AppendHitsHot is AppendHits restricted to the hot-tier automaton: the
// cold tier — the long tail of rules usage telemetry saw never fire —
// is skipped entirely. It is the overload governor's brownout match
// path (ladder level L2+): cheaper by the cold probe and the cold
// working set, at the cost of possibly missing a cold blocking rule.
// The degradation is one-sided by the tier invariants (every exception
// and every keyword-less rule is hot): an Allowed verdict is exact,
// a Blocked verdict is exact, and the only possible drift is a cold
// block reported as NoMatch. On an untiered list (no cold automaton)
// the result is identical to AppendHits. Non-ASCII URLs fall back to
// the full-fidelity token index either way.
func (l *List) AppendHitsHot(dst []Hit, q Request) []Hit {
	c := newMatchCtx(q)
	c.resetCands()
	if !l.auto.scanInto(&c) {
		return l.appendHitsTokenIndexCtx(&c, dst)
	}
	for _, ord := range c.sortedCands() {
		if r := l.rules[ord]; r.matchCtx(&c) {
			dst = append(dst, Hit{r, int(ord)})
		}
	}
	return dst
}

// DecideHits derives the match verdict from an AppendHits result: the
// first matching exception in insertion order wins, else the first
// matching block — the same rule (and ordinal) MatchRequest returns. The
// ordinal is -1 for NoMatch, so it can feed RecordUsage unconditionally.
func DecideHits(hits []Hit) (Decision, *Rule, int) {
	for _, h := range hits {
		if h.Rule.Kind == KindHTTPException {
			return Allowed, h.Rule, h.Ord
		}
	}
	for _, h := range hits {
		if h.Rule.Kind == KindHTTPBlock {
			return Blocked, h.Rule, h.Ord
		}
	}
	return NoMatch, nil, -1
}

// MatchingHTTPRulesTokenIndex is MatchingHTTPRules served by the
// token-hash keyword index: each rule lives in exactly one bucket, so
// collecting the matching buckets and restoring insertion order by
// ordinal reproduces the linear scan's output exactly. Kept as the
// automaton's differential baseline and non-ASCII fallback.
func (l *List) MatchingHTTPRulesTokenIndex(q Request) []*Rule {
	c := newMatchCtx(q)
	return l.appendMatchingTokenIndexCtx(&c, nil)
}

func (l *List) appendMatchingTokenIndexCtx(c *matchCtx, dst []*Rule) []*Rule {
	var scratch [matchScratchCap]indexedRule
	for _, h := range l.tokenIndexHitsCtx(c, scratch[:0]) {
		dst = append(dst, h.r)
	}
	return dst
}

func (l *List) appendHitsTokenIndexCtx(c *matchCtx, dst []Hit) []Hit {
	var scratch [matchScratchCap]indexedRule
	for _, h := range l.tokenIndexHitsCtx(c, scratch[:0]) {
		dst = append(dst, Hit{h.r, h.ord})
	}
	return dst
}

// tokenIndexHitsCtx collects every matching HTTP rule through the token
// index into hits, restored to insertion order. Matching sets are tiny (a
// handful of rules): a small-N insertion sort over the caller's stack
// scratch restores insertion order without the closure and interface
// allocations sort.Slice would cost per call.
func (l *List) tokenIndexHitsCtx(c *matchCtx, hits []indexedRule) []indexedRule {
	blockIdx, exceptIdx := l.tokenIndexes()
	hits = exceptIdx.appendMatches(c, hits)
	hits = blockIdx.appendMatches(c, hits)
	for i := 1; i < len(hits); i++ {
		h := hits[i]
		j := i - 1
		for j >= 0 && hits[j].ord > h.ord {
			hits[j+1] = hits[j]
			j--
		}
		hits[j+1] = h
	}
	return hits
}

// MatchingHTTPRulesLinear is the index-free reference implementation of
// MatchingHTTPRules, kept as the ablation baseline for benchmarks and the
// differential tests.
func (l *List) MatchingHTTPRulesLinear(q Request) []*Rule {
	c := newMatchCtx(q)
	var out []*Rule
	for _, r := range l.rules {
		if r.IsHTTP() && r.matchCtx(&c) {
			out = append(out, r)
		}
	}
	return out
}

// ElemHideDisabled reports whether an @@…$elemhide exception rule turns
// element hiding off for pages on the domain; genericOnly additionally
// reports $generichide (only domain-less hiding rules disabled).
func (l *List) ElemHideDisabled(pageDomain string) (all, genericOnly bool) {
	if len(l.hideToggles) == 0 {
		return false, false
	}
	q := Request{
		URL:        "http://" + pageDomain + "/",
		Type:       TypeDocument,
		PageDomain: pageDomain,
	}
	c := newMatchCtx(q)
	for _, r := range l.hideToggles {
		if r.matchCtx(&c) {
			if r.DisableElemHide {
				all = true
			}
			if r.DisableGenericHide {
				genericOnly = true
			}
		}
	}
	return all, genericOnly
}

// HiddenElements returns, for a page on the given domain, the indexes of
// elements that element hiding rules would hide, together with the rule
// that hides each. Element-hiding exception rules unhide matching
// elements; $elemhide / $generichide exceptions disable hiding wholesale.
func (l *List) HiddenElements(pageDomain string, elems []*Element) map[int]*Rule {
	allOff, genericOff := l.ElemHideDisabled(pageDomain)
	if allOff {
		return map[int]*Rule{}
	}
	hidden := make(map[int]*Rule)
	if len(l.elemHide) == 0 || len(elems) == 0 {
		return hidden
	}
	// The domain scope of a hiding rule depends only on (rule, pageDomain):
	// resolve each rule's applicability at most once per call instead of
	// once per (rule, element) pair.
	applies := domainMemo{domain: pageDomain}
	for i, e := range elems {
		hideRule := l.hideIdx.firstMatch(l.elemHide, e, genericOff, &applies)
		if hideRule == nil {
			continue
		}
		excepted := false
		for _, r := range l.elemExcept {
			if r.appliesOn(pageDomain) && r.Selector.Match(e) {
				excepted = true
				break
			}
		}
		if !excepted {
			hidden[i] = hideRule
		}
	}
	return hidden
}

// domainMemo caches appliesOn verdicts per rule ordinal for one page.
type domainMemo struct {
	domain string
	known  []int8 // 0 unknown, 1 applies, -1 does not
}

func (m *domainMemo) appliesOn(rules []*Rule, ord int) bool {
	if m.known == nil {
		m.known = make([]int8, len(rules))
	}
	switch m.known[ord] {
	case 1:
		return true
	case -1:
		return false
	}
	if rules[ord].appliesOn(m.domain) {
		m.known[ord] = 1
		return true
	}
	m.known[ord] = -1
	return false
}

// hideIndex buckets element hiding rules by the id their selector demands.
// A selector with a required #id can only match elements carrying exactly
// that id, so per element only its id bucket plus the id-less bucket need
// scanning. Ordinals into the elemHide slice keep first-match-in-insertion-
// order semantics when the two buckets are merged.
type hideIndex struct {
	byID map[string][]int
	noID []int
}

func (h *hideIndex) add(r *Rule, ord int) {
	if id := r.Selector.IndexKey(); id != "" {
		if h.byID == nil {
			h.byID = make(map[string][]int)
		}
		h.byID[id] = append(h.byID[id], ord)
		return
	}
	h.noID = append(h.noID, ord)
}

// firstMatch returns the first hiding rule (in insertion order) matching
// the element, honoring $generichide and domain scoping.
func (h *hideIndex) firstMatch(rules []*Rule, e *Element, genericOff bool, applies *domainMemo) *Rule {
	var withID []int
	if e.ID != "" {
		withID = h.byID[e.ID]
	}
	// Merge the two ordinal streams in ascending order.
	i, j := 0, 0
	for i < len(withID) || j < len(h.noID) {
		var ord int
		if j >= len(h.noID) || (i < len(withID) && withID[i] < h.noID[j]) {
			ord = withID[i]
			i++
		} else {
			ord = h.noID[j]
			j++
		}
		r := rules[ord]
		if genericOff && !r.HasDomainTag() {
			continue
		}
		if applies.appliesOn(rules, ord) && r.Selector.Match(e) {
			return r
		}
	}
	return nil
}

// appliesOn reports whether an element hiding rule is active on a page
// domain, honoring the rule's domain prefix and ~negations.
func (r *Rule) appliesOn(pageDomain string) bool {
	if len(r.Domains) > 0 {
		ok := false
		for _, d := range r.Domains {
			if domainWithin(pageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.NotDomains {
		if domainWithin(pageDomain, d) {
			return false
		}
	}
	return true
}

// CountByClass tallies the list's rules by Figure 1 class.
func (l *List) CountByClass() map[Class]int {
	out := make(map[Class]int, len(AllClasses))
	for _, r := range l.rules {
		out[r.Class()]++
	}
	return out
}

// Domains returns the sorted set of domains targeted by any rule in the
// list (per Rule.TargetDomains). This feeds the §3.3 domain-overlap and
// Table 1 / Figure 2 analyses.
func (l *List) Domains() []string {
	seen := make(map[string]bool)
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			seen[d] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ExceptionDomainSplit returns the sets of domains that appear in exception
// rules and in non-exception rules (a domain can appear in both). §3.3 uses
// the ratio of the two set sizes.
func (l *List) ExceptionDomainSplit() (exception, nonException []string) {
	exc := make(map[string]bool)
	non := make(map[string]bool)
	for _, r := range l.rules {
		for _, d := range r.TargetDomains() {
			if r.IsException() {
				exc[d] = true
			} else {
				non[d] = true
			}
		}
	}
	for d := range exc {
		exception = append(exception, d)
	}
	for d := range non {
		nonException = append(nonException, d)
	}
	sort.Strings(exception)
	sort.Strings(nonException)
	return exception, nonException
}

// indexedRule pairs a rule with its insertion ordinal in the List, so
// all-matches index lookups can restore insertion order.
type indexedRule struct {
	r   *Rule
	ord int
}

// keywordIndex buckets HTTP rules by the token-safe keyword drawn from
// their pattern (Rule.Keyword). A lookup tokenizes the request URL once and
// hash-probes each token's bucket, so per-request cost tracks the URL's
// token count rather than the list's keyword count. Rules without a usable
// keyword go into a generic bucket that is always scanned. Each rule lives
// in exactly one bucket and URL tokens are deduplicated, so no bucket is
// visited twice.
type keywordIndex struct {
	byKeyword map[string][]indexedRule
	generic   []indexedRule
}

func newKeywordIndex() *keywordIndex {
	return &keywordIndex{byKeyword: make(map[string][]indexedRule)}
}

func (idx *keywordIndex) add(r *Rule, ord int) {
	kw := r.Keyword()
	if kw == "" {
		idx.generic = append(idx.generic, indexedRule{r, ord})
		return
	}
	idx.byKeyword[kw] = append(idx.byKeyword[kw], indexedRule{r, ord})
}

// appendMatches collects every matching rule into out (all-matches mode).
// Buckets are disjoint, but a token that occurs twice in the URL probes its
// bucket twice, so matches are deduplicated by ordinal against this call's
// own output (the matching set is tiny); callers sort by ordinal to restore
// insertion order.
func (idx *keywordIndex) appendMatches(c *matchCtx, out []indexedRule) []indexedRule {
	base := len(out)
	if len(idx.byKeyword) > 0 {
		s := c.low()
		for i := 0; i < len(s); {
			if !keywordChar(s[i]) {
				i++
				continue
			}
			j := i + 1
			for j < len(s) && keywordChar(s[j]) {
				j++
			}
			if j-i >= 3 {
			bucket:
				for _, ir := range idx.byKeyword[s[i:j]] {
					if !ir.r.matchCtx(c) {
						continue
					}
					for _, seen := range out[base:] {
						if seen.ord == ir.ord {
							continue bucket
						}
					}
					out = append(out, ir)
				}
			}
			i = j
		}
	}
	for _, ir := range idx.generic {
		if ir.r.matchCtx(c) {
			out = append(out, ir)
		}
	}
	return out
}
