package experiments

import (
	"context"
	"strings"
	"testing"

	"adwars/internal/antiadblock"
	"adwars/internal/features"
)

func TestTable2(t *testing.T) {
	script := antiadblock.ReferenceBlockAdBlock
	rows, err := Table2(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 20 {
		t.Fatalf("only %d features extracted", len(rows))
	}
	// The geometry probes of Table 2 must appear, tagged all+keyword.
	found := false
	for _, r := range rows {
		if r.Feature == "Identifier:offsetHeight" {
			found = true
			joined := strings.Join(r.Sets, ",")
			if !strings.Contains(joined, "all") || !strings.Contains(joined, "keyword") {
				t.Errorf("offsetHeight sets = %v, want all+keyword", r.Sets)
			}
		}
	}
	if !found {
		t.Fatal("Identifier:offsetHeight missing")
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "offsetHeight") {
		t.Error("render missing highlight feature")
	}
}

func TestTable2ParseError(t *testing.T) {
	if _, err := Table2("((("); err == nil {
		t.Fatal("want parse error")
	}
}

func TestTable3AndLiveModel(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier sweep is slow")
	}
	l, r := lab(t)
	corpus := &Corpus{Positives: r.CorpusPos, Negatives: r.CorpusNeg}
	if corpus.Imbalance() < 1 {
		t.Fatalf("imbalance = %.1f", corpus.Imbalance())
	}

	cfg := Table3Config{TopK: []int{100, 1000}, Folds: 5, Seed: 3, MaxSamples: 440}
	rows, err := Table3(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 feature counts × 3 sets × 2 classifiers.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, row := range rows {
		if row.TPRate < 0.85 {
			t.Errorf("%s/%s/%d: TP rate %.2f too low",
				row.Classifier, row.FeatureSet, row.NumFeatures, row.TPRate)
		}
		if row.FPRate > 0.15 {
			t.Errorf("%s/%s/%d: FP rate %.2f too high",
				row.Classifier, row.FeatureSet, row.NumFeatures, row.FPRate)
		}
	}
	best := BestRow(rows)
	if best.TPRate < 0.9 {
		t.Errorf("best TP rate %.2f, want ≥ 0.9 (paper: 99.7%%)", best.TPRate)
	}
	_ = RenderTable3(rows)

	// §5 live test: classify scripts from live sites outside the
	// training cut (the paper reports 92.5%).
	live, err := l.RunLive(context.Background(), LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LiveModelTest(corpus, live.Scripts, 5000, 3, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scripts < 20 {
		t.Fatalf("live test scripts = %d", res.Scripts)
	}
	if res.TPRate < 0.75 {
		t.Errorf("live TP rate = %.2f, want high (paper 92.5%%)", res.TPRate)
	}
	_ = res.Render()
}

func TestCorpusTrim(t *testing.T) {
	c := &Corpus{}
	for i := 0; i < 50; i++ {
		c.Positives = append(c.Positives, strings.Repeat("p", i+1))
	}
	for i := 0; i < 900; i++ {
		c.Negatives = append(c.Negatives, strings.Repeat("n", i+1))
	}
	trimmed := c.trim(330, 1)
	if got := trimmed.Imbalance(); got < 9.5 || got > 10.5 {
		t.Fatalf("imbalance after trim = %.1f, want 10", got)
	}
	if len(trimmed.Positives)+len(trimmed.Negatives) > 340 {
		t.Fatalf("trim exceeded cap: %d samples",
			len(trimmed.Positives)+len(trimmed.Negatives))
	}
	// Deterministic.
	t2 := c.trim(330, 1)
	if t2.Positives[0] != trimmed.Positives[0] {
		t.Fatal("trim not deterministic")
	}
}

func TestBuildDatasetSkipsUnparseable(t *testing.T) {
	c := &Corpus{
		Positives: []string{"var bait = document.body.offsetHeight;", "((("},
		Negatives: []string{"var x = 1;", "var y = 2;", ")))"},
	}
	ds, err := buildDataset(c, features.SetAll, 100, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("dataset kept %d samples, want 3 parseable", ds.Len())
	}
}
