package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"adwars/internal/features"
	"adwars/internal/jsast"
	"adwars/internal/ml"
)

// PipelineConfig controls how the §5 detection pipeline executes — worker
// fan-out for extraction/selection/CV and the SMO kernel-cache budget.
// It never changes results: every parallel stage merges in corpus order
// and the kernel cache is bit-transparent, so outputs are identical to the
// sequential baseline at any setting (asserted by the differential tests).
type PipelineConfig struct {
	// Workers is the fan-out width for extraction, feature selection, and
	// cross-validation folds (0 = GOMAXPROCS).
	Workers int
	// KernelCache is the Gram-cache entry budget passed to the trainers
	// (0 = ml.DefaultKernelCache, <0 = no caching).
	KernelCache int
	// Sequential forces the single-worker, uncached reference pipeline —
	// the baseline the parallel path is measured (and differentially
	// tested) against. It overrides Workers and KernelCache.
	Sequential bool
}

func (p PipelineConfig) workers() int {
	if p.Sequential {
		return 1
	}
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (p PipelineConfig) kernelCache() int {
	if p.Sequential {
		return -1
	}
	return p.KernelCache
}

// svm returns the default SVM config with the pipeline's cache and worker
// settings applied.
func (p PipelineConfig) svm() ml.SVMConfig {
	cfg := ml.DefaultSVMConfig()
	cfg.KernelCache = p.kernelCache()
	cfg.Workers = p.workers()
	return cfg
}

// adaboost returns the default AdaBoost config with the pipeline's cache
// and worker settings applied.
func (p PipelineConfig) adaboost() ml.AdaBoostConfig {
	cfg := ml.DefaultAdaBoostConfig()
	cfg.SVM.KernelCache = p.kernelCache()
	cfg.SVM.Workers = p.workers()
	return cfg
}

// ---- Table 2: example features ----

// Table2Row is one extracted feature with the feature sets it belongs to.
type Table2Row struct {
	Feature string
	Sets    []string
}

// Table2 extracts features from a BlockAdBlock-style script (Code 5) and
// reports, for a sample of features, which feature sets contain them —
// the shape of Table 2.
func Table2(script string) ([]Table2Row, error) {
	prog, _, err := jsast.ParseAndUnpack(script)
	if err != nil {
		return nil, err
	}
	inSet := map[features.Set]map[string]bool{}
	for _, s := range features.Sets {
		inSet[s] = features.Extract(prog, s)
	}
	var names []string
	for f := range inSet[features.SetAll] {
		names = append(names, f)
	}
	sort.Strings(names)
	var rows []Table2Row
	for _, f := range names {
		var sets []string
		for _, s := range features.Sets {
			if inSet[s][f] {
				sets = append(sets, s.String())
			}
		}
		rows = append(rows, Table2Row{Feature: f, Sets: sets})
	}
	return rows, nil
}

// RenderTable2 prints a digest of Table 2: the geometry-probe and literal
// features the paper highlights, when present.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — extracted features (total %d)\n", len(rows))
	highlights := []string{
		"MemberExpression:", "Literal:abp", "Literal:0", "Literal:hidden",
		"Identifier:clientHeight", "Identifier:clientWidth",
		"Identifier:offsetHeight", "Identifier:offsetWidth",
	}
	printed := 0
	for _, r := range rows {
		show := false
		for _, h := range highlights {
			if strings.HasPrefix(r.Feature, h) {
				show = true
				break
			}
		}
		if show && printed < 24 {
			fmt.Fprintf(&b, "%-48s %s\n", r.Feature, strings.Join(r.Sets, ", "))
			printed++
		}
	}
	return b.String()
}

// ---- Table 3: classifier accuracy ----

// Table3Row is one (feature set, #features, classifier) configuration's
// 10-fold cross-validated accuracy.
type Table3Row struct {
	Classifier  string
	FeatureSet  features.Set
	NumFeatures int
	TPRate      float64
	FPRate      float64
}

// Table3Config parameterizes the Table 3 sweep.
type Table3Config struct {
	// TopK are the feature counts per feature set (the paper sweeps
	// {100, 1K, 5K/10K}).
	TopK []int
	// Folds is the cross-validation fold count (10 in the paper).
	Folds int
	// Seed fixes fold assignment and SMO randomness.
	Seed int64
	// MaxSamples optionally subsamples the corpus to bound runtime
	// (0 = use everything).
	MaxSamples int
	// Pipeline controls execution (worker fan-out, kernel cache). The
	// zero value runs fully parallel with the default cache budget.
	Pipeline PipelineConfig
}

// DefaultTable3Config mirrors the paper's sweep.
func DefaultTable3Config(seed int64) Table3Config {
	return Table3Config{TopK: []int{100, 1000, 10000}, Folds: 10, Seed: seed}
}

// Corpus is the labeled script corpus of §5.
type Corpus struct {
	Positives, Negatives []string
}

// Imbalance returns negatives per positive.
func (c *Corpus) Imbalance() float64 {
	if len(c.Positives) == 0 {
		return 0
	}
	return float64(len(c.Negatives)) / float64(len(c.Positives))
}

// trim enforces the paper's ~10:1 class imbalance and an optional total
// cap, deterministically.
func (c *Corpus) trim(maxSamples int, seed int64) *Corpus {
	pos := append([]string(nil), c.Positives...)
	neg := append([]string(nil), c.Negatives...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	if maxSamples > 0 && len(pos)+len(neg) > maxSamples {
		p := maxSamples / 11
		if p < 10 {
			p = 10
		}
		if p > len(pos) {
			p = len(pos)
		}
		pos = pos[:p]
	}
	if want := 10 * len(pos); len(neg) > want {
		neg = neg[:want]
	}
	return &Corpus{Positives: pos, Negatives: neg}
}

// buildDatasetRaw extracts features for the corpus under one feature set
// (no selection). Feature extraction is the expensive step, so callers
// sweeping several feature budgets extract once and select per budget.
// Extraction fans out over pipe.workers(); unparseable scripts drop out
// (as in the paper) and the surviving sets are compacted in corpus order,
// so the dataset is identical to a sequential ExtractSource loop.
func buildDatasetRaw(c *Corpus, set features.Set, pipe PipelineConfig) (*features.Dataset, error) {
	srcs := make([]string, 0, len(c.Positives)+len(c.Negatives))
	srcs = append(srcs, c.Positives...)
	srcs = append(srcs, c.Negatives...)
	fsets, errs, err := features.ExtractAll(context.Background(), srcs, set, pipe.workers())
	if err != nil {
		return nil, err
	}
	sets := make([]map[string]bool, 0, len(srcs))
	labels := make([]int, 0, len(srcs))
	for i := range srcs {
		if errs[i] != nil {
			continue // unparseable scripts drop out, as in the paper
		}
		sets = append(sets, fsets[i])
		if i < len(c.Positives) {
			labels = append(labels, +1)
		} else {
			labels = append(labels, -1)
		}
	}
	return features.Build(sets, labels)
}

// buildDataset extracts features for the corpus under one feature set and
// applies the paper's selection pipeline.
func buildDataset(c *Corpus, set features.Set, topK int, pipe PipelineConfig) (*features.Dataset, error) {
	ds, err := buildDatasetRaw(c, set, pipe)
	if err != nil {
		return nil, err
	}
	return ds.SelectPipelineWorkers(topK, pipe.workers()), nil
}

// Table3 runs the paper's classifier sweep: {all, literal, keyword} ×
// TopK × {SVM, AdaBoost+SVM} with stratified k-fold cross-validation.
func Table3(c *Corpus, cfg Table3Config) ([]Table3Row, error) {
	corpus := c.trim(cfg.MaxSamples, cfg.Seed)
	if len(corpus.Positives) < cfg.Folds {
		return nil, fmt.Errorf("experiments: only %d positives for %d folds",
			len(corpus.Positives), cfg.Folds)
	}
	pipe := cfg.Pipeline
	w := pipe.workers()
	var rows []Table3Row
	for _, set := range features.Sets {
		raw, err := buildDatasetRaw(corpus, set, pipe)
		if err != nil {
			return nil, err
		}
		base := raw.FilterVarianceWorkers(0.01, w).DeduplicateColumnsWorkers(w)
		for _, k := range cfg.TopK {
			ds := base.SelectTopChiSquareWorkers(k, w)
			conf, err := crossValidate(ds, cfg.Folds, cfg.Seed, pipe, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, table3Row("AdaBoost + SVM", set, ds, conf))
			conf, err = crossValidate(ds, cfg.Folds, cfg.Seed, pipe, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, table3Row("SVM", set, ds, conf))
		}
	}
	return rows, nil
}

func table3Row(name string, set features.Set, ds *features.Dataset, conf ml.Confusion) Table3Row {
	return Table3Row{
		Classifier:  name,
		FeatureSet:  set,
		NumFeatures: ds.NumFeatures(),
		TPRate:      conf.TPRate(),
		FPRate:      conf.FPRate(),
	}
}

// crossValidate dispatches to the shared-Gram parallel CV (default) or the
// legacy per-fold path (Sequential). Both produce identical confusions —
// the Sequential path is kept as the independent reference the
// differential tests compare against.
func crossValidate(ds *features.Dataset, folds int, seed int64, pipe PipelineConfig, boost bool) (ml.Confusion, error) {
	if pipe.Sequential {
		if boost {
			return ml.CrossValidate(ds, folds, ml.AdaBoostTrainer(pipe.adaboost()), seed)
		}
		return ml.CrossValidate(ds, folds, ml.SVMTrainer(pipe.svm()), seed)
	}
	cv := ml.CVConfig{Folds: folds, Seed: seed, Workers: pipe.workers()}
	if boost {
		return ml.CrossValidateAdaBoost(ds, pipe.adaboost(), cv)
	}
	return ml.CrossValidateSVM(ds, pipe.svm(), cv)
}

// RenderTable3 prints Table 3's rows.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — classifier accuracy (10-fold CV)\n")
	fmt.Fprintf(&b, "%-16s %-9s %10s %9s %9s\n",
		"Classifier", "Features", "#Features", "TP rate", "FP rate")
	cur := features.Set(-1)
	for _, r := range rows {
		if r.FeatureSet != cur {
			fmt.Fprintf(&b, "-- feature set: %s --\n", r.FeatureSet)
			cur = r.FeatureSet
		}
		fmt.Fprintf(&b, "%-16s %-9s %10d %8.1f%% %8.1f%%\n",
			r.Classifier, r.FeatureSet, r.NumFeatures,
			100*r.TPRate, 100*r.FPRate)
	}
	return b.String()
}

// BestRow returns the row with the best TP−FP margin (the paper's
// headline is AdaBoost+SVM, keyword set, top-1K).
func BestRow(rows []Table3Row) Table3Row {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.TPRate-r.FPRate > best.TPRate-best.FPRate {
			best = r
		}
	}
	return best
}

// ---- §5 live-web model test ----

// LiveTestResult is the out-of-sample TP rate on live-crawl scripts.
type LiveTestResult struct {
	Scripts  int
	Detected int
	TPRate   float64
}

// headlineTopK is the feature budget of the paper's headline configuration
// (AdaBoost+SVM over keyword features).
const headlineTopK = 1000

// TrainHeadlineModel trains the paper's headline configuration — AdaBoost
// over RBF-SVM weak learners, keyword features, top-1K chi-square selection
// — on the full retrospective corpus and freezes it as a serving snapshot
// (model + vocabulary + provenance). This is the model adwars-serve loads.
func TrainHeadlineModel(train *Corpus, seed int64, pipe PipelineConfig) (*ml.ModelSnapshot, error) {
	corpus := train.trim(0, seed)
	ds, err := buildDataset(corpus, features.SetKeyword, headlineTopK, pipe)
	if err != nil {
		return nil, err
	}
	model, err := ml.TrainAdaBoost(ds, pipe.adaboost(), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &ml.ModelSnapshot{
		FeatureSet: features.SetKeyword.String(),
		Vocab:      append([]string(nil), ds.Vocab...),
		Model:      model,
		Meta: ml.ModelMeta{
			Positives: len(corpus.Positives),
			Negatives: len(corpus.Negatives),
			TopK:      headlineTopK,
			Seed:      seed,
		},
	}, nil
}

// LiveModelTest trains the headline configuration (AdaBoost+SVM, keyword
// features, top-1K) on the retrospective corpus and classifies the
// anti-adblock scripts collected from live sites outside the training
// population — the paper's 92.5% TP experiment.
func LiveModelTest(train *Corpus, liveScripts []LiveScript, excludeTopN int, seed int64, pipe PipelineConfig) (*LiveTestResult, error) {
	snap, err := TrainHeadlineModel(train, seed, pipe)
	if err != nil {
		return nil, err
	}
	model, vocab := snap.Model, features.NewVocab(snap.Vocab)
	// Classify the out-of-population live scripts; extraction fans out,
	// prediction folds back in input order.
	eligible := make([]string, 0, len(liveScripts))
	for _, s := range liveScripts {
		if s.Rank > 0 && s.Rank <= excludeTopN {
			continue // exclude the training population (top-5K)
		}
		eligible = append(eligible, s.Source)
	}
	fsets, errs, err := features.ExtractAll(context.Background(), eligible, features.SetKeyword, pipe.workers())
	if err != nil {
		return nil, err
	}
	res := &LiveTestResult{}
	for i := range eligible {
		if errs[i] != nil {
			continue
		}
		res.Scripts++
		if model.Predict(vocab.Project(fsets[i])) > 0 {
			res.Detected++
		}
	}
	if res.Scripts > 0 {
		res.TPRate = float64(res.Detected) / float64(res.Scripts)
	}
	return res, nil
}

// Render prints the live-test headline.
func (r *LiveTestResult) Render() string {
	return fmt.Sprintf("§5 live model test — %d/%d live anti-adblock scripts detected (TP rate %.1f%%)\n",
		r.Detected, r.Scripts, 100*r.TPRate)
}
