package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"adwars/internal/features"
	"adwars/internal/jsast"
	"adwars/internal/ml"
)

// ---- Table 2: example features ----

// Table2Row is one extracted feature with the feature sets it belongs to.
type Table2Row struct {
	Feature string
	Sets    []string
}

// Table2 extracts features from a BlockAdBlock-style script (Code 5) and
// reports, for a sample of features, which feature sets contain them —
// the shape of Table 2.
func Table2(script string) ([]Table2Row, error) {
	prog, _, err := jsast.ParseAndUnpack(script)
	if err != nil {
		return nil, err
	}
	inSet := map[features.Set]map[string]bool{}
	for _, s := range features.Sets {
		inSet[s] = features.Extract(prog, s)
	}
	var names []string
	for f := range inSet[features.SetAll] {
		names = append(names, f)
	}
	sort.Strings(names)
	var rows []Table2Row
	for _, f := range names {
		var sets []string
		for _, s := range features.Sets {
			if inSet[s][f] {
				sets = append(sets, s.String())
			}
		}
		rows = append(rows, Table2Row{Feature: f, Sets: sets})
	}
	return rows, nil
}

// RenderTable2 prints a digest of Table 2: the geometry-probe and literal
// features the paper highlights, when present.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — extracted features (total %d)\n", len(rows))
	highlights := []string{
		"MemberExpression:", "Literal:abp", "Literal:0", "Literal:hidden",
		"Identifier:clientHeight", "Identifier:clientWidth",
		"Identifier:offsetHeight", "Identifier:offsetWidth",
	}
	printed := 0
	for _, r := range rows {
		show := false
		for _, h := range highlights {
			if strings.HasPrefix(r.Feature, h) {
				show = true
				break
			}
		}
		if show && printed < 24 {
			fmt.Fprintf(&b, "%-48s %s\n", r.Feature, strings.Join(r.Sets, ", "))
			printed++
		}
	}
	return b.String()
}

// ---- Table 3: classifier accuracy ----

// Table3Row is one (feature set, #features, classifier) configuration's
// 10-fold cross-validated accuracy.
type Table3Row struct {
	Classifier  string
	FeatureSet  features.Set
	NumFeatures int
	TPRate      float64
	FPRate      float64
}

// Table3Config parameterizes the Table 3 sweep.
type Table3Config struct {
	// TopK are the feature counts per feature set (the paper sweeps
	// {100, 1K, 5K/10K}).
	TopK []int
	// Folds is the cross-validation fold count (10 in the paper).
	Folds int
	// Seed fixes fold assignment and SMO randomness.
	Seed int64
	// MaxSamples optionally subsamples the corpus to bound runtime
	// (0 = use everything).
	MaxSamples int
}

// DefaultTable3Config mirrors the paper's sweep.
func DefaultTable3Config(seed int64) Table3Config {
	return Table3Config{TopK: []int{100, 1000, 10000}, Folds: 10, Seed: seed}
}

// Corpus is the labeled script corpus of §5.
type Corpus struct {
	Positives, Negatives []string
}

// Imbalance returns negatives per positive.
func (c *Corpus) Imbalance() float64 {
	if len(c.Positives) == 0 {
		return 0
	}
	return float64(len(c.Negatives)) / float64(len(c.Positives))
}

// trim enforces the paper's ~10:1 class imbalance and an optional total
// cap, deterministically.
func (c *Corpus) trim(maxSamples int, seed int64) *Corpus {
	pos := append([]string(nil), c.Positives...)
	neg := append([]string(nil), c.Negatives...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	if maxSamples > 0 && len(pos)+len(neg) > maxSamples {
		p := maxSamples / 11
		if p < 10 {
			p = 10
		}
		if p > len(pos) {
			p = len(pos)
		}
		pos = pos[:p]
	}
	if want := 10 * len(pos); len(neg) > want {
		neg = neg[:want]
	}
	return &Corpus{Positives: pos, Negatives: neg}
}

// buildDatasetRaw extracts features for the corpus under one feature set
// (no selection). Feature extraction is the expensive step, so callers
// sweeping several feature budgets extract once and select per budget.
func buildDatasetRaw(c *Corpus, set features.Set) (*features.Dataset, error) {
	var sets []map[string]bool
	var labels []int
	for _, src := range c.Positives {
		fs, err := features.ExtractSource(src, set)
		if err != nil {
			continue // unparseable scripts drop out, as in the paper
		}
		sets = append(sets, fs)
		labels = append(labels, +1)
	}
	for _, src := range c.Negatives {
		fs, err := features.ExtractSource(src, set)
		if err != nil {
			continue
		}
		sets = append(sets, fs)
		labels = append(labels, -1)
	}
	return features.Build(sets, labels)
}

// buildDataset extracts features for the corpus under one feature set and
// applies the paper's selection pipeline.
func buildDataset(c *Corpus, set features.Set, topK int) (*features.Dataset, error) {
	ds, err := buildDatasetRaw(c, set)
	if err != nil {
		return nil, err
	}
	return ds.SelectPipeline(topK), nil
}

// Table3 runs the paper's classifier sweep: {all, literal, keyword} ×
// TopK × {SVM, AdaBoost+SVM} with stratified k-fold cross-validation.
func Table3(c *Corpus, cfg Table3Config) ([]Table3Row, error) {
	corpus := c.trim(cfg.MaxSamples, cfg.Seed)
	if len(corpus.Positives) < cfg.Folds {
		return nil, fmt.Errorf("experiments: only %d positives for %d folds",
			len(corpus.Positives), cfg.Folds)
	}
	var rows []Table3Row
	for _, set := range features.Sets {
		raw, err := buildDatasetRaw(corpus, set)
		if err != nil {
			return nil, err
		}
		base := raw.FilterVariance(0.01).DeduplicateColumns()
		for _, k := range cfg.TopK {
			ds := base.SelectTopChiSquare(k)
			for _, clf := range []struct {
				name    string
				trainer ml.Trainer
			}{
				{"AdaBoost + SVM", ml.AdaBoostTrainer(ml.DefaultAdaBoostConfig())},
				{"SVM", ml.SVMTrainer(ml.DefaultSVMConfig())},
			} {
				conf, err := ml.CrossValidate(ds, cfg.Folds, clf.trainer, cfg.Seed)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table3Row{
					Classifier:  clf.name,
					FeatureSet:  set,
					NumFeatures: ds.NumFeatures(),
					TPRate:      conf.TPRate(),
					FPRate:      conf.FPRate(),
				})
			}
		}
	}
	return rows, nil
}

// RenderTable3 prints Table 3's rows.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — classifier accuracy (10-fold CV)\n")
	fmt.Fprintf(&b, "%-16s %-9s %10s %9s %9s\n",
		"Classifier", "Features", "#Features", "TP rate", "FP rate")
	cur := features.Set(-1)
	for _, r := range rows {
		if r.FeatureSet != cur {
			fmt.Fprintf(&b, "-- feature set: %s --\n", r.FeatureSet)
			cur = r.FeatureSet
		}
		fmt.Fprintf(&b, "%-16s %-9s %10d %8.1f%% %8.1f%%\n",
			r.Classifier, r.FeatureSet, r.NumFeatures,
			100*r.TPRate, 100*r.FPRate)
	}
	return b.String()
}

// BestRow returns the row with the best TP−FP margin (the paper's
// headline is AdaBoost+SVM, keyword set, top-1K).
func BestRow(rows []Table3Row) Table3Row {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.TPRate-r.FPRate > best.TPRate-best.FPRate {
			best = r
		}
	}
	return best
}

// ---- §5 live-web model test ----

// LiveTestResult is the out-of-sample TP rate on live-crawl scripts.
type LiveTestResult struct {
	Scripts  int
	Detected int
	TPRate   float64
}

// LiveModelTest trains the headline configuration (AdaBoost+SVM, keyword
// features, top-1K) on the retrospective corpus and classifies the
// anti-adblock scripts collected from live sites outside the training
// population — the paper's 92.5% TP experiment.
func LiveModelTest(train *Corpus, liveScripts []LiveScript, excludeTopN int, seed int64) (*LiveTestResult, error) {
	corpus := train.trim(0, seed)
	ds, err := buildDataset(corpus, features.SetKeyword, 1000)
	if err != nil {
		return nil, err
	}
	model, err := ml.TrainAdaBoost(ds, ml.DefaultAdaBoostConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	res := &LiveTestResult{}
	for _, s := range liveScripts {
		if s.Rank > 0 && s.Rank <= excludeTopN {
			continue // exclude the training population (top-5K)
		}
		fs, err := features.ExtractSource(s.Source, features.SetKeyword)
		if err != nil {
			continue
		}
		res.Scripts++
		if model.Predict(ds.Project(fs)) > 0 {
			res.Detected++
		}
	}
	if res.Scripts > 0 {
		res.TPRate = float64(res.Detected) / float64(res.Scripts)
	}
	return res, nil
}

// Render prints the live-test headline.
func (r *LiveTestResult) Render() string {
	return fmt.Sprintf("§5 live model test — %d/%d live anti-adblock scripts detected (TP rate %.1f%%)\n",
		r.Detected, r.Scripts, 100*r.TPRate)
}
