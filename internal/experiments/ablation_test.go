package experiments

// Ablation tests for the design choices DESIGN.md calls out: feature-set
// generality vs identifier randomization, eval-unpacking on/off, and
// chi-square selection vs no selection.

import (
	"math/rand"
	"testing"

	"adwars/internal/antiadblock"
	"adwars/internal/features"
	"adwars/internal/ml"
)

// buildAblationCorpus generates a corpus where every anti-adblock script
// has fully randomized identifiers and literals per sample.
func buildAblationCorpus(seed int64, n int, pack float64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	opt := antiadblock.GenOptions{PackProbability: pack}
	c := &Corpus{}
	for i := 0; i < n; i++ {
		v := antiadblock.Catalog[i%len(antiadblock.Catalog)]
		c.Positives = append(c.Positives,
			antiadblock.VendorScript(v, "http://pub.example/ads.js", "n1", rng, opt))
		c.Negatives = append(c.Negatives,
			antiadblock.RandomBenignScript(rng, opt),
			antiadblock.RandomBenignScript(rng, opt),
			antiadblock.RandomBenignScript(rng, opt))
	}
	return c
}

// cvAccuracy cross-validates one configuration and returns TP/FP rates.
func cvAccuracy(t *testing.T, c *Corpus, set features.Set, topK int) (tp, fp float64) {
	t.Helper()
	ds, err := buildDataset(c, set, topK, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := ml.CrossValidate(ds, 5, ml.SVMTrainer(ml.DefaultSVMConfig()), 9)
	if err != nil {
		t.Fatal(err)
	}
	return conf.TPRate(), conf.FPRate()
}

// TestAblationKeywordSetSurvivesRandomization verifies §5's design
// argument: keyword features are robust to identifier/literal
// randomization, so they classify heavily-randomized corpora well.
func TestAblationKeywordSetSurvivesRandomization(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation CV is slow")
	}
	c := buildAblationCorpus(1, 60, 0)
	tpKw, fpKw := cvAccuracy(t, c, features.SetKeyword, 1000)
	if tpKw < 0.9 || fpKw > 0.1 {
		t.Errorf("keyword set should survive randomization: TP %.2f FP %.2f", tpKw, fpKw)
	}
	// The literal set still works here because literal *values* (bait
	// class names, style strings) carry signal; the keyword set must be
	// at least competitive.
	tpLit, _ := cvAccuracy(t, c, features.SetLiteral, 1000)
	if tpKw+0.05 < tpLit-0.25 {
		t.Errorf("keyword TP %.2f unexpectedly far below literal TP %.2f", tpKw, tpLit)
	}
}

// TestAblationUnpackingMatters verifies the unpacking pass: packed
// scripts classified by a model trained on unpacked ones only work
// because ParseAndUnpack recovers the payload.
func TestAblationUnpackingMatters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := buildAblationCorpus(2, 50, 0) // unpacked training corpus
	ds, err := buildDataset(train, features.SetKeyword, 1000, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := ml.TrainSVM(ds, nil, ml.DefaultSVMConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Fully packed test scripts.
	packed := antiadblock.GenOptions{PackProbability: 1}
	detected := 0
	const n = 30
	for i := 0; i < n; i++ {
		v := antiadblock.Catalog[i%len(antiadblock.Catalog)]
		src := antiadblock.VendorScript(v, "http://pub.example/ads.js", "n2", rng, packed)
		fs, err := features.ExtractSource(src, features.SetKeyword)
		if err != nil {
			t.Fatal(err)
		}
		if model.Predict(ds.Project(fs)) > 0 {
			detected++
		}
	}
	if float64(detected)/n < 0.8 {
		t.Errorf("only %d/%d packed scripts detected; unpacking should make them transparent", detected, n)
	}
}

// TestAblationChiSquareBeatsNoSelection verifies that the chi-square
// budget keeps accuracy while shrinking the feature space drastically.
func TestAblationChiSquareBeatsNoSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation CV is slow")
	}
	c := buildAblationCorpus(3, 60, 0.1)
	full, err := buildDataset(c, features.SetAll, 1<<30, PipelineConfig{}) // effectively no top-k cut
	if err != nil {
		t.Fatal(err)
	}
	small, err := buildDataset(c, features.SetAll, 25, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if small.NumFeatures() >= full.NumFeatures() {
		t.Fatalf("selection did not shrink: %d vs %d", small.NumFeatures(), full.NumFeatures())
	}
	confFull, err := ml.CrossValidate(full, 5, ml.SVMTrainer(ml.DefaultSVMConfig()), 9)
	if err != nil {
		t.Fatal(err)
	}
	confSmall, err := ml.CrossValidate(small, 5, ml.SVMTrainer(ml.DefaultSVMConfig()), 9)
	if err != nil {
		t.Fatal(err)
	}
	if confSmall.TPRate() < confFull.TPRate()-0.1 {
		t.Errorf("top-100 chi-square TP %.2f collapsed vs full TP %.2f",
			confSmall.TPRate(), confFull.TPRate())
	}
}

// TestAblationAdaBoostRounds verifies boosting is bounded and that more
// rounds never destroy training accuracy on an imbalanced corpus.
func TestAblationAdaBoostRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation training is slow")
	}
	c := buildAblationCorpus(5, 40, 0)
	ds, err := buildDataset(c, features.SetKeyword, 500, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prevTP := -1.0
	for _, rounds := range []int{1, 5, 10} {
		cfg := ml.DefaultAdaBoostConfig()
		cfg.Rounds = rounds
		model, err := ml.TrainAdaBoost(ds, cfg, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		tp := ml.Evaluate(model, ds).TPRate()
		if tp < prevTP-0.05 {
			t.Errorf("training TP fell from %.2f to %.2f at %d rounds", prevTP, tp, rounds)
		}
		prevTP = tp
	}
}
