package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"adwars/internal/abp"
	"adwars/internal/browser"
	"adwars/internal/crawler"
	"adwars/internal/listgen"
	"adwars/internal/stats"
	"adwars/internal/wayback"
)

// RetroConfig parameterizes the retrospective measurement (§4.1–4.2).
type RetroConfig struct {
	// TopN is the Alexa cut the crawl covers (5,000 in the paper).
	TopN int
	// Months is the crawl schedule (use Lab.RetroMonths).
	Months []time.Time
	// Workers is crawl parallelism (the paper used 10 browsers).
	Workers int
	// Faults injects deterministic transient archive failures (rate
	// limiting, timeouts, truncated bodies, outages). The zero value
	// disables injection; with it enabled, the crawl engine's retry path
	// absorbs every transient, so Figure 5/6 output is identical to a
	// zero-fault run with the same seed.
	Faults wayback.FaultConfig
	// Retry overrides the crawler's retry/backoff policy (zero fields
	// take defaults).
	Retry crawler.RetryPolicy
	// CheckpointPath, when set, journals completed site-months to this
	// file so an interrupted run can restart without refetching.
	CheckpointPath string
	// Resume restores journaled site-months from CheckpointPath instead
	// of starting clean.
	Resume bool
	// Metrics, when non-nil, accumulates crawl counters for reporting.
	Metrics *crawler.Metrics
	// Shards is the replay fan-out: after each month's crawl, per-site
	// rule matching runs across this many workers and the results are
	// merged deterministically, so the figures are byte-identical to a
	// sequential run. 0 means Workers.
	Shards int
	// LinearScan bypasses the lists' keyword index and matches every
	// request against every rule — the reference baseline the benchmarks
	// and differential tests compare the indexed path against.
	LinearScan bool
}

// MonthCoverage is one month's measurement outcome.
type MonthCoverage struct {
	Month time.Time
	// Figure 5 components.
	NotArchived, Outdated, Partial int
	// Figure 6 components, keyed by list name.
	HTTPTriggered map[string]int
	HTMLTriggered map[string]int
}

// RetroResult aggregates the full retrospective study.
type RetroResult struct {
	Months   []MonthCoverage
	Excluded int // permanently unarchived domains (robots/admin/undefined)

	// FirstMatch records, per list, the first month each site triggered
	// an HTTP rule.
	FirstMatch map[string]map[string]time.Time

	// ThirdPartyMatched counts, per list, sites whose matched requests
	// point at third-party anti-adblock hosts (§4.2: >98% for AAK).
	ThirdPartyMatched map[string]int

	// CorpusPos and CorpusNeg are the unique script sources collected
	// for §5: scripts whose URLs matched HTTP rules (positives) and the
	// remaining scripts (negatives).
	CorpusPos, CorpusNeg []string
}

// RunRetrospective crawls monthly top-N snapshots through the archive and
// replays each against the filter-list version in force at that time —
// exactly the paper's Figure 4 pipeline. The crawl and the replay are the
// two halves of PrepareReplay + ReplayRun.Run; this runs both.
func (l *Lab) RunRetrospective(ctx context.Context, cfg RetroConfig) (*RetroResult, error) {
	run, err := l.PrepareReplay(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return run.Run(cfg.Shards, cfg.LinearScan), nil
}

// ReplayRun holds one crawl's worth of monthly snapshots so the replay —
// the pure matching half of the pipeline — can be repeated without
// refetching. Snapshot HTML is parsed and HAR URLs truncated once, at
// prepare time, so Run measures rule matching rather than DOM parsing.
// Benchmarks crawl once and time Run under different shard counts and
// match strategies; the determinism test asserts Run(1, …) and Run(n, …)
// render identical figures.
type ReplayRun struct {
	lab     *Lab
	months  []*crawler.MonthResult
	inputs  [][]siteInput
	exclude int
	workers int
}

// siteInput is one crawled site-month reduced to what matching consumes:
// live request URLs and the parsed DOM's element views.
type siteInput struct {
	urls  []string
	views []*abp.Element
}

// PrepareReplay runs the crawl half of RunRetrospective: every month's
// top-N snapshots fetched (with retry/backoff, checkpointing, and resume),
// ready to be replayed against historic list versions.
func (l *Lab) PrepareReplay(ctx context.Context, cfg RetroConfig) (*ReplayRun, error) {
	if cfg.TopN <= 0 {
		cfg.TopN = int(5000 * l.Scale())
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 10
	}
	if len(cfg.Months) == 0 {
		cfg.Months = l.RetroMonths(1)
	}
	domains := l.World.TopDomains(cfg.TopN)
	archCfg := wayback.DefaultConfig(l.Seed)
	archCfg.Start, archCfg.End = l.World.Cfg.Start, l.World.Cfg.End
	// Exclusion counts scale with the crawl population.
	frac := float64(cfg.TopN) / 5000
	archCfg.Robots = int(153 * frac)
	archCfg.Admin = int(26 * frac)
	archCfg.Undefined = int(54 * frac)
	archCfg.Faults = cfg.Faults
	arch := wayback.New(l.World, domains, archCfg)

	var journal *crawler.Journal
	if cfg.CheckpointPath != "" {
		var err error
		journal, err = crawler.OpenJournal(cfg.CheckpointPath, cfg.Resume)
		if err != nil {
			return nil, fmt.Errorf("experiments: checkpoint: %w", err)
		}
		defer journal.Close()
		// Refuse journals from a different world: their artifacts would
		// silently change the figures.
		fp := fmt.Sprintf("seed=%d topn=%d", l.Seed, cfg.TopN)
		if err := journal.Stamp(fp); err != nil {
			return nil, fmt.Errorf("experiments: checkpoint: %w", err)
		}
	}
	// One breaker across all months: archive health is global, not
	// per-month.
	crawlCfg := crawler.Config{
		Workers: cfg.Workers,
		Metrics: cfg.Metrics,
		Retry:   cfg.Retry,
		Breaker: crawler.NewBreaker(crawler.DefaultBreakerConfig(), cfg.Metrics),
		Journal: journal,
		Seed:    l.Seed,
	}

	run := &ReplayRun{lab: l, workers: cfg.Workers}
	for _, month := range cfg.Months {
		mr, err := crawler.CrawlMonth(ctx, arch, domains, month, crawlCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: crawl %s: %w", stats.MonthLabel(month), err)
		}
		// Reduce each snapshot to match inputs up front: URL truncation
		// and HTML parsing are per-snapshot constants, so they belong to
		// the crawl half, not the (repeatable) replay half.
		inputs := make([]siteInput, len(mr.Results))
		crawler.ForEach(ctx, cfg.Workers, len(mr.Results), func(i int) {
			sr := mr.Results[i]
			if sr.Status != crawler.StatusOK {
				return
			}
			snap := sr.Snapshot
			urls := make([]string, 0, len(snap.HAR.Entries))
			for _, u := range snap.HAR.URLs() {
				urls = append(urls, wayback.TruncateURL(u))
			}
			inputs[i] = siteInput{urls: urls, views: browser.DOMViews(snap.HTML)}
		})
		run.months = append(run.months, mr)
		run.inputs = append(run.inputs, inputs)
		run.exclude = mr.Counts[crawler.StatusExcluded]
	}
	return run, nil
}

// siteReplay is one site-month's match outcome against every list in
// force: the blocked-URL set and whether any element-hiding rule fired.
// Computing it is the embarrassingly parallel half of the replay; folding
// it into RetroResult stays sequential because FirstMatch, the third-party
// tallies, and the corpus dedup/cap depend on visit order.
type siteReplay struct {
	blocked map[string]map[string]bool
	htmlHit map[string]bool
}

// Run replays every crawled month against the filter-list version in force
// at that time (§4.2 uses historic versions, not the final lists). Per-site
// matching fans out across shards workers; the fold runs sequentially in
// (month, site, list) order, so any shard count renders the same bytes.
//
// linear reproduces the pre-index pipeline as the ablation baseline: every
// request is matched against every rule, and the month's lists are
// recompiled from their revisions instead of coming from the per-revision
// cache — the two costs the indexed, cached replay exists to remove.
func (rr *ReplayRun) Run(shards int, linear bool) *RetroResult {
	if shards <= 0 {
		shards = rr.workers
	}
	res := &RetroResult{
		Excluded:          rr.exclude,
		FirstMatch:        map[string]map[string]time.Time{},
		ThirdPartyMatched: map[string]int{},
	}
	for _, name := range ListNames {
		res.FirstMatch[name] = map[string]time.Time{}
	}
	posSeen := map[string]bool{}
	negSeen := map[string]bool{}

	for mi, mr := range rr.months {
		month := mr.Month
		cov := MonthCoverage{
			Month:         month,
			NotArchived:   mr.Counts[crawler.StatusNotArchived],
			Outdated:      mr.Counts[crawler.StatusOutdated],
			Partial:       mr.Counts[crawler.StatusPartial],
			HTTPTriggered: map[string]int{},
			HTMLTriggered: map[string]int{},
		}
		var lists map[string]*abp.List
		if linear {
			// Baseline cost model: one fresh compile per list per month,
			// like the pipeline before the per-revision cache.
			lists = make(map[string]*abp.List, 2)
			for name, h := range rr.lab.histories() {
				if rev, ok := h.At(month); ok {
					lists[name] = abp.NewList(name, rev.Rules)
				} else {
					lists[name] = nil
				}
			}
		} else {
			lists = rr.lab.listsAt(month)
		}

		// Fan-out: match every surviving site against every list. The
		// compiled lists are shared across workers — they are immutable
		// and race-free by construction (see abp: precompiled matchers).
		inputs := rr.inputs[mi]
		replays := make([]siteReplay, len(mr.Results))
		crawler.ForEach(context.Background(), shards, len(mr.Results), func(i int) {
			if mr.Results[i].Status != crawler.StatusOK {
				return
			}
			replays[i] = replaySite(lists, mr.Results[i].Domain, inputs[i], linear)
		})

		// Fold: sequential, in crawl order — identical accounting to the
		// old one-site-at-a-time loop.
		for i, sr := range mr.Results {
			if sr.Status != crawler.StatusOK {
				continue
			}
			rep := replays[i]
			siteMatched := false
			for _, name := range ListNames {
				if lists[name] == nil {
					continue
				}
				blockedURLs := rep.blocked[name]
				if len(blockedURLs) > 0 {
					cov.HTTPTriggered[name]++
					if _, ok := res.FirstMatch[name][sr.Domain]; !ok {
						res.FirstMatch[name][sr.Domain] = month
						if anyThirdParty(blockedURLs, sr.Domain) {
							res.ThirdPartyMatched[name]++
						}
					}
					siteMatched = true
					collectPositives(sr.Snapshot, blockedURLs, posSeen, &res.CorpusPos)
				}
				if rep.htmlHit[name] {
					cov.HTMLTriggered[name]++
				}
			}
			if !siteMatched {
				// Keep the pool generously oversized; Corpus.trim
				// enforces the final 10:1 imbalance uniformly, so the
				// negative class spans the whole crawl window.
				collectNegatives(sr.Snapshot, negSeen, &res.CorpusNeg, 25*len(posSeen)+500)
			}
		}
		res.Months = append(res.Months, cov)
	}
	return res
}

// replaySite matches one prepared site-month against every list in force:
// its live request URLs against the HTTP rules and its parsed DOM (shared
// by every list) against the element-hiding rules.
func replaySite(lists map[string]*abp.List, domain string, in siteInput, linear bool) siteReplay {
	rep := siteReplay{
		blocked: make(map[string]map[string]bool, len(lists)),
		htmlHit: make(map[string]bool, len(lists)),
	}
	for name, list := range lists {
		if list == nil {
			continue
		}
		rep.blocked[name] = blockedHTTP(list, in.urls, domain, linear)
		rep.htmlHit[name] = len(list.HiddenElements(domain, in.views)) > 0
	}
	return rep
}

// blockedHTTP returns the set of URLs a list's blocking rules match
// (exception-allowed requests do not make a site "anti-adblocking").
func blockedHTTP(list *abp.List, urls []string, pageDomain string, linear bool) map[string]bool {
	match := browser.MatchHTTPURLs
	if linear {
		match = browser.MatchHTTPURLsLinear
	}
	var blocked map[string]bool
	for _, trig := range match(list, urls, pageDomain) {
		if trig.Decision == abp.Blocked {
			if blocked == nil {
				blocked = map[string]bool{}
			}
			blocked[trig.URL] = true
		}
	}
	return blocked
}

// anyThirdParty reports whether any matched URL is served off-site.
func anyThirdParty(urls map[string]bool, pageDomain string) bool {
	for u := range urls {
		q := abp.Request{URL: u, PageDomain: pageDomain}
		if q.IsThirdParty() {
			return true
		}
	}
	return false
}

// collectPositives stores the script bodies behind matched URLs.
func collectPositives(snap *wayback.Snapshot, blocked map[string]bool, seen map[string]bool, out *[]string) {
	for _, e := range snap.HAR.Entries {
		if e.Response.Content.Text == "" {
			continue
		}
		if !blocked[wayback.TruncateURL(e.Request.URL)] {
			continue
		}
		src := e.Response.Content.Text
		if !seen[src] {
			seen[src] = true
			*out = append(*out, src)
		}
	}
	// Inline anti-adblock scripts travel with the page, not the HAR;
	// real crawls capture them from page content. Use the structured
	// page the simulator kept.
	for _, s := range snap.Page.Scripts {
		if s.AntiAdblock && s.URL != "" && blocked[s.URL] && !seen[s.Source] {
			seen[s.Source] = true
			*out = append(*out, s.Source)
		}
	}
}

// collectNegatives stores script bodies from sites the filter lists did
// not match, up to a cap that keeps the corpus near the paper's 10:1
// imbalance. Crucially, this is the paper's labeling: "we use the
// remaining scripts that the filter lists did not identify as
// anti-adblockers" — so anti-adblock scripts the lists MISSED land in the
// negative class. The classifier's measured FP rate therefore includes
// correctly-flagged list misses, which is where the paper's 3–9% FP rates
// come from and why manual review of detections is still required.
func collectNegatives(snap *wayback.Snapshot, seen map[string]bool, out *[]string, limit int) {
	if len(*out) >= limit {
		return
	}
	for _, s := range snap.Page.Scripts {
		if s.Source == "" {
			continue
		}
		if !seen[s.Source] {
			seen[s.Source] = true
			*out = append(*out, s.Source)
		}
		if len(*out) >= limit {
			return
		}
	}
}

// ---- Figure 5 rendering ----

// RenderFig5 prints the monthly missing-snapshot series.
func (r *RetroResult) RenderFig5() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — missing monthly snapshots (excluded upfront: %d)\n", r.Excluded)
	fmt.Fprintf(&b, "%-8s %12s %12s %9s %7s\n", "month", "notArchived", "outdated", "partial", "total")
	for _, m := range r.Months {
		fmt.Fprintf(&b, "%-8s %12d %12d %9d %7d\n", stats.MonthLabel(m.Month),
			m.NotArchived, m.Outdated, m.Partial,
			m.NotArchived+m.Outdated+m.Partial)
	}
	return b.String()
}

// RenderFig6 prints the monthly trigger series for both lists.
func (r *RetroResult) RenderFig6() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — sites triggering filter rules per month\n")
	fmt.Fprintf(&b, "%-8s", "month")
	for _, n := range ListNames {
		fmt.Fprintf(&b, " %14s", "HTTP "+abbrev(n))
	}
	for _, n := range ListNames {
		fmt.Fprintf(&b, " %14s", "HTML "+abbrev(n))
	}
	b.WriteByte('\n')
	for _, m := range r.Months {
		fmt.Fprintf(&b, "%-8s", stats.MonthLabel(m.Month))
		for _, n := range ListNames {
			fmt.Fprintf(&b, " %14d", m.HTTPTriggered[n])
		}
		for _, n := range ListNames {
			fmt.Fprintf(&b, " %14d", m.HTMLTriggered[n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func abbrev(name string) string {
	if strings.HasPrefix(name, "Anti") {
		return "AAK"
	}
	return "CEL"
}

// ---- Figure 7: detection delay ----

// Fig7Result is, per list, the CDF of days between a site deploying an
// anti-adblocker and the list first carrying a rule that detects it.
type Fig7Result struct {
	Delays map[string][]float64
	CDFs   map[string]*stats.CDF
}

// Fig7 computes detection delays analytically from the ground truth: a
// deployment is detected at the earlier of (a) the list's generic rule
// covering its vendor and (b) the list's first site-specific rule naming
// its domain.
func (l *Lab) Fig7(topN int) *Fig7Result {
	if topN <= 0 {
		topN = int(5000 * l.Scale())
	}
	top := map[string]bool{}
	for _, d := range l.World.TopDomains(topN) {
		top[d] = true
	}
	out := &Fig7Result{
		Delays: map[string][]float64{},
		CDFs:   map[string]*stats.CDF{},
	}
	firstSeen := map[string]map[string]time.Time{
		"Anti-Adblock Killer": l.Lists.AAK.DomainFirstSeen(),
		"Combined EasyList":   l.Lists.Combined.DomainFirstSeen(),
	}
	vendorTime := map[string]func(string) time.Time{
		"Anti-Adblock Killer": listgen.AAKVendorRuleTime,
		"Combined EasyList":   listgen.CELBroadRuleTime,
	}
	for _, d := range l.World.Deployments() {
		if !top[d.SiteDomain] || !d.ActiveAt(l.World.Cfg.End) {
			continue
		}
		for name := range firstSeen {
			detect := time.Time{}
			// Generic vendor/path rules only reach deployments that
			// load the vendor's canonical script URL.
			if vt := vendorTime[name](d.Vendor.Name); !vt.IsZero() && d.CanonicalScript() {
				detect = vt
			}
			if st, ok := firstSeen[name][d.SiteDomain]; ok {
				if detect.IsZero() || st.Before(detect) {
					detect = st
				}
			}
			if detect.IsZero() || detect.After(l.World.Cfg.End) {
				continue // never detected within the study window
			}
			days := detect.Sub(d.Start).Hours() / 24
			out.Delays[name] = append(out.Delays[name], days)
		}
	}
	for name, ds := range out.Delays {
		out.CDFs[name] = stats.NewCDF(ds)
	}
	return out
}

// Render prints Figure 7's CDFs at the paper's ticks.
func (f *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — detection delay (days from deployment to first matching rule)\n")
	ticks := []float64{-1080, -720, -360, -180, 0, 100, 180, 360, 540, 720, 1080}
	fmt.Fprintf(&b, "%-10s", "days")
	for _, n := range ListNames {
		fmt.Fprintf(&b, " %20s", n)
	}
	b.WriteByte('\n')
	for _, x := range ticks {
		fmt.Fprintf(&b, "%-10.0f", x)
		for _, n := range ListNames {
			c := f.CDFs[n]
			if c == nil {
				fmt.Fprintf(&b, " %20s", "-")
				continue
			}
			fmt.Fprintf(&b, " %20.3f", c.At(x))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
