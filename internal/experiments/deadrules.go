package experiments

import (
	"fmt"
	"sort"
	"strings"

	"adwars/internal/abp"
	"adwars/internal/web"
)

// ---- Dead-rule fraction: how much of each list ever fires ----

// DeadRuleList is one list's usage profile after the replay: how many of
// its HTTP rules decided at least one verdict, how concentrated the hits
// are, and what a usage-driven hot tier would cost in working set.
type DeadRuleList struct {
	Name      string
	Rules     int
	HTTPRules int
	// FiredRules is how many HTTP rules won at least one verdict; the
	// dead fraction is over HTTP rules only (element-hiding rules never
	// take the match path).
	FiredRules   int
	DeadFraction float64
	TotalHits    uint64
	// Top10Share is the share of all hits decided by the ten most-hit
	// rules — the concentration that makes tiering pay.
	Top10Share float64
	// HotBytes is the automaton working set after compacting around the
	// fired rules (CompileTiered on hits > 0); FlatBytes is the untiered
	// automaton the whole list compiles to.
	HotBytes  int
	FlatBytes int
}

// DeadRuleResult is the dead-rule experiment across the §3 lists.
type DeadRuleResult struct {
	Sites    int
	Requests int
	Lists    []DeadRuleList
}

// DeadRules replays the live top-N sites' request streams against each
// list's latest revision with usage telemetry enabled and reports the
// fraction of rules that never fire — the "Who Filters the Filters"
// observation that motivates hot/cold compaction: the overwhelming
// majority of crowdsourced rules are dead weight on the hot path.
// topN ≤ 0 uses the retrospective crawl population (5,000 × scale).
func (l *Lab) DeadRules(topN int) *DeadRuleResult {
	if topN <= 0 {
		topN = int(5000 * l.Scale())
	}
	// Materialize the request streams once; both lists replay the same
	// traffic.
	type site struct {
		domain string
		reqs   []web.Request
	}
	var sites []site
	out := &DeadRuleResult{}
	for _, d := range l.World.TopDomains(topN) {
		page, ok := l.World.LivePage(d)
		if !ok {
			continue
		}
		sites = append(sites, site{domain: d, reqs: page.Requests})
		out.Sites++
		out.Requests += len(page.Requests)
	}

	for _, name := range ListNames {
		h := l.histories()[name]
		latest := h.LatestList()
		if latest == nil {
			continue
		}
		// Fresh compile so the experiment's counters never leak into the
		// lab's shared per-revision list cache.
		list := abp.NewList(name, latest.Rules())
		list.EnableUsage()
		var hits []abp.Hit
		for _, s := range sites {
			for _, rq := range s.reqs {
				hits = list.AppendHits(hits[:0], abp.Request{URL: rq.URL, Type: rq.Type, PageDomain: s.domain})
				_, _, ord := abp.DecideHits(hits)
				list.RecordUsage(ord)
			}
		}
		counts := list.Usage().Counts()
		dl := DeadRuleList{Name: name, Rules: len(list.Rules())}
		var fired []uint64
		for ord, r := range list.Rules() {
			if !r.IsHTTP() {
				continue
			}
			dl.HTTPRules++
			if c := counts[ord]; c > 0 {
				dl.FiredRules++
				dl.TotalHits += c
				fired = append(fired, c)
			}
		}
		if dl.HTTPRules > 0 {
			dl.DeadFraction = float64(dl.HTTPRules-dl.FiredRules) / float64(dl.HTTPRules)
		}
		sort.Slice(fired, func(i, j int) bool { return fired[i] > fired[j] })
		var top uint64
		for i := 0; i < len(fired) && i < 10; i++ {
			top += fired[i]
		}
		if dl.TotalHits > 0 {
			dl.Top10Share = float64(top) / float64(dl.TotalHits)
		}
		dl.FlatBytes = list.TierStats().HotBytes
		dl.HotBytes = list.CompileTiered(func(ord int) bool { return counts[ord] > 0 }).TierStats().HotBytes
		out.Lists = append(out.Lists, dl)
	}
	return out
}

// Render prints the dead-rule exhibit: one row per list.
func (r *DeadRuleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dead rules — live replay over %d sites (%d requests)\n", r.Sites, r.Requests)
	fmt.Fprintf(&b, "%-20s %7s %7s %7s %6s %8s %6s %10s %10s\n",
		"list", "rules", "http", "fired", "dead%", "hits", "top10", "hot-bytes", "flat-bytes")
	for _, dl := range r.Lists {
		fmt.Fprintf(&b, "%-20s %7d %7d %7d %5.1f%% %8d %5.0f%% %10d %10d\n",
			dl.Name, dl.Rules, dl.HTTPRules, dl.FiredRules, 100*dl.DeadFraction,
			dl.TotalHits, 100*dl.Top10Share, dl.HotBytes, dl.FlatBytes)
	}
	return b.String()
}
