package experiments

import (
	"context"
	"fmt"
	"strings"

	"adwars/internal/browser"
	"adwars/internal/crawler"
)

// LiveConfig parameterizes the §4.3 live crawl.
type LiveConfig struct {
	// TopN is the ranking cut (100,000 in the paper).
	TopN int
	// Workers is crawl parallelism.
	Workers int
	// Metrics, when non-nil, accumulates crawl counters.
	Metrics *crawler.Metrics
	// Shards is the replay fan-out for per-site rule matching, merged
	// deterministically like the retrospective replay. 0 means Workers.
	Shards int
}

// LiveScript is a detected anti-adblock script from the live crawl, used
// by the §5 out-of-sample model test.
type LiveScript struct {
	Domain string
	Rank   int
	Source string
}

// LiveResult aggregates the live crawl (§4.3).
type LiveResult struct {
	Total, Reachable int
	// HTTPTriggered / HTMLTriggered count sites per list.
	HTTPTriggered map[string]int
	HTMLTriggered map[string]int
	// ThirdPartyShare is, per list, the share of HTTP-matched sites whose
	// matched requests hit third-party hosts (the paper: 97% for AAK).
	ThirdPartyShare map[string]float64
	// Scripts are the unique detected anti-adblock scripts (deduplicated
	// by source) with the detecting site's rank, feeding §5's live test.
	Scripts []LiveScript
}

// RunLive crawls the live top-N against the most recent list versions.
func (l *Lab) RunLive(ctx context.Context, cfg LiveConfig) (*LiveResult, error) {
	if cfg.TopN <= 0 {
		cfg.TopN = l.World.Cfg.UniverseSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 10
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
	}
	domains := l.World.TopDomains(cfg.TopN)
	results, err := crawler.CrawlLive(ctx, l.World, domains, crawler.Config{Workers: cfg.Workers, Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}

	// The most recent list versions, from the shared per-revision compile
	// cache (so the CLI's retro + live run compiles them once).
	lists := l.listsAt(l.World.Cfg.LiveDate)

	res := &LiveResult{
		Total:           len(domains),
		HTTPTriggered:   map[string]int{},
		HTMLTriggered:   map[string]int{},
		ThirdPartyShare: map[string]float64{},
	}
	thirdParty := map[string]int{}
	seenScript := map[string]bool{}

	// Fan-out per-site matching, then fold sequentially in crawl order —
	// same two-stage shape as ReplayRun.Run, so shard count never changes
	// the rendered numbers.
	replays := make([]siteReplay, len(results))
	crawler.ForEach(context.Background(), cfg.Shards, len(results), func(i int) {
		r := results[i]
		if r.Page == nil {
			return
		}
		urls := make([]string, 0, len(r.Page.Requests))
		for _, q := range r.Page.Requests {
			urls = append(urls, q.URL)
		}
		views := browser.PageViews(r.Page)
		rep := siteReplay{
			blocked: make(map[string]map[string]bool, len(lists)),
			htmlHit: make(map[string]bool, len(lists)),
		}
		for name, list := range lists {
			if list == nil {
				continue
			}
			rep.blocked[name] = blockedHTTP(list, urls, r.Domain, false)
			rep.htmlHit[name] = len(list.HiddenElements(r.Domain, views)) > 0
		}
		replays[i] = rep
	})

	for i, r := range results {
		if r.Page == nil {
			continue
		}
		res.Reachable++
		rep := replays[i]
		matchedAny := false
		for _, name := range ListNames {
			if lists[name] == nil {
				continue
			}
			blocked := rep.blocked[name]
			if len(blocked) > 0 {
				res.HTTPTriggered[name]++
				if anyThirdParty(blocked, r.Domain) {
					thirdParty[name]++
				}
				matchedAny = true
			}
			if rep.htmlHit[name] {
				res.HTMLTriggered[name]++
			}
		}
		if matchedAny {
			for _, s := range r.Page.Scripts {
				if s.AntiAdblock && !seenScript[s.Source] {
					seenScript[s.Source] = true
					res.Scripts = append(res.Scripts, LiveScript{
						Domain: r.Domain,
						Rank:   l.World.RankOf(r.Domain),
						Source: s.Source,
					})
				}
			}
		}
	}
	for _, name := range ListNames {
		if res.HTTPTriggered[name] > 0 {
			res.ThirdPartyShare[name] = float64(thirdParty[name]) / float64(res.HTTPTriggered[name])
		}
	}
	return res, nil
}

// Render prints the §4.3 headline numbers.
func (r *LiveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3 — live crawl of top-%d (reachable %d)\n", r.Total, r.Reachable)
	for _, n := range ListNames {
		fmt.Fprintf(&b, "%-22s HTTP-triggered %6d   HTML-triggered %4d   third-party share %.0f%%\n",
			n, r.HTTPTriggered[n], r.HTMLTriggered[n], 100*r.ThirdPartyShare[n])
	}
	fmt.Fprintf(&b, "unique anti-adblock scripts collected: %d\n", len(r.Scripts))
	return b.String()
}
