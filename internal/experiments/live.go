package experiments

import (
	"context"
	"fmt"
	"strings"

	"adwars/internal/abp"
	"adwars/internal/crawler"
)

// LiveConfig parameterizes the §4.3 live crawl.
type LiveConfig struct {
	// TopN is the ranking cut (100,000 in the paper).
	TopN int
	// Workers is crawl parallelism.
	Workers int
	// Metrics, when non-nil, accumulates crawl counters.
	Metrics *crawler.Metrics
}

// LiveScript is a detected anti-adblock script from the live crawl, used
// by the §5 out-of-sample model test.
type LiveScript struct {
	Domain string
	Rank   int
	Source string
}

// LiveResult aggregates the live crawl (§4.3).
type LiveResult struct {
	Total, Reachable int
	// HTTPTriggered / HTMLTriggered count sites per list.
	HTTPTriggered map[string]int
	HTMLTriggered map[string]int
	// ThirdPartyShare is, per list, the share of HTTP-matched sites whose
	// matched requests hit third-party hosts (the paper: 97% for AAK).
	ThirdPartyShare map[string]float64
	// Scripts are the unique detected anti-adblock scripts (deduplicated
	// by source) with the detecting site's rank, feeding §5's live test.
	Scripts []LiveScript
}

// RunLive crawls the live top-N against the most recent list versions.
func (l *Lab) RunLive(ctx context.Context, cfg LiveConfig) (*LiveResult, error) {
	if cfg.TopN <= 0 {
		cfg.TopN = l.World.Cfg.UniverseSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 10
	}
	domains := l.World.TopDomains(cfg.TopN)
	results, err := crawler.CrawlLive(ctx, l.World, domains, crawler.Config{Workers: cfg.Workers, Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}

	lists := map[string]*abp.List{}
	for name, h := range l.histories() {
		if rev, ok := h.At(l.World.Cfg.LiveDate); ok {
			lists[name] = abp.NewList(name, rev.Rules)
		}
	}

	res := &LiveResult{
		Total:           len(domains),
		HTTPTriggered:   map[string]int{},
		HTMLTriggered:   map[string]int{},
		ThirdPartyShare: map[string]float64{},
	}
	thirdParty := map[string]int{}
	seenScript := map[string]bool{}

	for _, r := range results {
		if r.Page == nil {
			continue
		}
		res.Reachable++
		urls := make([]string, 0, len(r.Page.Requests))
		for _, q := range r.Page.Requests {
			urls = append(urls, q.URL)
		}
		views := make([]*abp.Element, 0, 16)
		for _, e := range r.Page.Elements() {
			views = append(views, e.ToABP())
		}
		matchedAny := false
		for _, name := range ListNames {
			list := lists[name]
			if list == nil {
				continue
			}
			blocked := blockedHTTP(list, urls, r.Domain)
			if len(blocked) > 0 {
				res.HTTPTriggered[name]++
				if anyThirdParty(blocked, r.Domain) {
					thirdParty[name]++
				}
				matchedAny = true
			}
			if len(list.HiddenElements(r.Domain, views)) > 0 {
				res.HTMLTriggered[name]++
			}
		}
		if matchedAny {
			for _, s := range r.Page.Scripts {
				if s.AntiAdblock && !seenScript[s.Source] {
					seenScript[s.Source] = true
					res.Scripts = append(res.Scripts, LiveScript{
						Domain: r.Domain,
						Rank:   l.World.RankOf(r.Domain),
						Source: s.Source,
					})
				}
			}
		}
	}
	for _, name := range ListNames {
		if res.HTTPTriggered[name] > 0 {
			res.ThirdPartyShare[name] = float64(thirdParty[name]) / float64(res.HTTPTriggered[name])
		}
	}
	return res, nil
}

// Render prints the §4.3 headline numbers.
func (r *LiveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3 — live crawl of top-%d (reachable %d)\n", r.Total, r.Reachable)
	for _, n := range ListNames {
		fmt.Fprintf(&b, "%-22s HTTP-triggered %6d   HTML-triggered %4d   third-party share %.0f%%\n",
			n, r.HTTPTriggered[n], r.HTMLTriggered[n], 100*r.ThirdPartyShare[n])
	}
	fmt.Fprintf(&b, "unique anti-adblock scripts collected: %d\n", len(r.Scripts))
	return b.String()
}
