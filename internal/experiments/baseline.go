package experiments

import (
	"fmt"
	"strings"

	"adwars/internal/features"
	"adwars/internal/signatures"
)

// BaselineResult compares the paper's ML classifier with the
// signature-based approach of Storey et al. (§2.2) on the same corpus.
type BaselineResult struct {
	SignatureTP, SignatureFP float64
	MLTP, MLFP               float64
	Matched                  map[string]int // signature name → hit count on positives
}

// CompareBaselines evaluates hand-written signatures and the headline ML
// configuration (AdaBoost+SVM, keyword top-1K, 10-fold CV) on one corpus.
// The ML classifier should dominate on randomized builds while signatures
// stay near-zero FP — the trade-off §5 motivates.
func CompareBaselines(c *Corpus, seed int64, pipe PipelineConfig) (*BaselineResult, error) {
	corpus := c.trim(0, seed)
	out := &BaselineResult{Matched: map[string]int{}}

	det := signatures.New(nil)
	tp, fn, fp, tn := det.Evaluate(corpus.Positives, corpus.Negatives)
	out.SignatureTP = signatures.TPRate(tp, fn)
	out.SignatureFP = signatures.FPRate(fp, tn)
	for _, src := range corpus.Positives {
		for _, name := range det.Match(src) {
			out.Matched[name]++
		}
	}

	ds, err := buildDataset(corpus, features.SetKeyword, 1000, pipe)
	if err != nil {
		return nil, err
	}
	folds := 10
	if n := positiveCount(ds); n < folds {
		folds = n
	}
	conf, err := crossValidate(ds, folds, seed, pipe, true)
	if err != nil {
		return nil, err
	}
	out.MLTP = conf.TPRate()
	out.MLFP = conf.FPRate()
	return out, nil
}

func positiveCount(ds *features.Dataset) int {
	n := 0
	for _, l := range ds.Labels {
		if l > 0 {
			n++
		}
	}
	return n
}

// Render prints the comparison.
func (r *BaselineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5 baseline — signatures (Storey et al.) vs ML classifier\n")
	fmt.Fprintf(&b, "%-28s %8s %8s\n", "approach", "TP rate", "FP rate")
	fmt.Fprintf(&b, "%-28s %7.1f%% %7.1f%%\n", "hand-written signatures",
		100*r.SignatureTP, 100*r.SignatureFP)
	fmt.Fprintf(&b, "%-28s %7.1f%% %7.1f%%\n", "AdaBoost+SVM (keyword 1K)",
		100*r.MLTP, 100*r.MLFP)
	return b.String()
}
