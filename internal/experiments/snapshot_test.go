package experiments

import (
	"fmt"
	"path/filepath"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/features"
	"adwars/internal/ml"
)

// TestModelSnapshotDifferential is the serving-layer fidelity guarantee
// for the model path: the headline model trained on the real Table 3
// corpus, frozen to disk, and reloaded must produce bit-identical
// AdaBoost decision values to the in-memory original on every corpus
// script. Decisions are sums of exact ±alpha terms, so equality here is
// ==, not approximate.
func TestModelSnapshotDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the headline model; skipped in -short")
	}
	_, r := lab(t)
	corpus := &Corpus{Positives: r.CorpusPos, Negatives: r.CorpusNeg}

	snap, err := TrainHeadlineModel(corpus, 2, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := ml.SaveModelSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := ml.LoadModelSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FeatureSet != snap.FeatureSet || len(loaded.Vocab) != len(snap.Vocab) {
		t.Fatalf("snapshot shape changed: set %q/%q, vocab %d/%d",
			loaded.FeatureSet, snap.FeatureSet, len(loaded.Vocab), len(snap.Vocab))
	}

	set, err := features.SetFromString(loaded.FeatureSet)
	if err != nil {
		t.Fatal(err)
	}
	origVocab := features.NewVocab(snap.Vocab)
	loadVocab := features.NewVocab(loaded.Vocab)

	scripts := append(append([]string(nil), corpus.Positives...), corpus.Negatives...)
	evaluated := 0
	for i, src := range scripts {
		fs, err := features.ExtractSource(src, set)
		if err != nil {
			continue // unparseable scripts drop out of the corpus too
		}
		orig := snap.Model.Decision(origVocab.Project(fs))
		got := loaded.Model.Decision(loadVocab.Project(fs))
		if got != orig {
			t.Fatalf("script %d: reloaded decision %v != in-memory %v", i, got, orig)
		}
		evaluated++
	}
	if evaluated < 100 {
		t.Fatalf("only %d scripts evaluated; differential too weak", evaluated)
	}
	t.Logf("model round-trip: %d scripts, all decisions bit-identical", evaluated)
}

// TestListsSnapshotDifferential freezes the latest version of the three
// anti-adblock lists, reloads them, and checks that every listed domain
// (plus synthetic non-listed URLs) gets the same decision and the same
// firing rule from the reloaded lists as from the in-memory originals.
func TestListsSnapshotDifferential(t *testing.T) {
	l, _ := lab(t)
	orig := []*abp.List{
		l.Lists.AAK.LatestList(),
		l.Lists.EasyListAA.LatestList(),
		l.Lists.AWRL.LatestList(),
	}
	snap := &abp.ListsSnapshot{Label: "differential", Lists: orig}
	path := filepath.Join(t.TempDir(), "lists.json")
	if err := abp.SaveListsSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := abp.LoadListsSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Lists) != len(orig) {
		t.Fatalf("reloaded %d lists, want %d", len(loaded.Lists), len(orig))
	}

	checked := 0
	for i, ol := range orig {
		ll := loaded.Lists[i]
		if ll.Len() != ol.Len() {
			t.Fatalf("list %d: %d rules reloaded, want %d", i, ll.Len(), ol.Len())
		}
		var urls []string
		for _, d := range ol.Domains() {
			urls = append(urls,
				"http://"+d+"/ads/unit.js",
				"http://"+d+"/allowed",
				"http://sub."+d+"/bait.js",
			)
		}
		for j := 0; j < 50; j++ {
			urls = append(urls, fmt.Sprintf("http://unlisted%03d.example/app.js", j))
		}
		for _, u := range urls {
			q := abp.Request{URL: u, Type: abp.TypeScript, PageDomain: "publisher.example"}
			od, or := ol.MatchRequest(q)
			ld, lr := ll.MatchRequest(q)
			if od != ld {
				t.Fatalf("list %d %s: decision %v != %v", i, u, ld, od)
			}
			if (or == nil) != (lr == nil) || (or != nil && or.Raw != lr.Raw) {
				t.Fatalf("list %d %s: firing rule differs after reload", i, u)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d requests checked; differential too weak", checked)
	}
	t.Logf("lists round-trip: %d requests, all decisions and rules identical", checked)
}
