package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"adwars/internal/features"
)

func TestSharedRuleExhibit(t *testing.T) {
	l, _ := lab(t)
	rows := l.SharedRuleExhibit(5)
	if len(rows) == 0 {
		t.Fatal("no shared-domain exhibits")
	}
	for _, r := range rows {
		if len(r.AAK) == 0 || len(r.CEL) == 0 {
			t.Fatalf("exhibit for %s missing a side", r.Domain)
		}
		if sameStrings(r.AAK, r.CEL) {
			t.Fatalf("exhibit for %s shows identical implementations", r.Domain)
		}
	}
	out := RenderSharedRules(rows)
	if !strings.Contains(out, "Anti-Adblock Killer") || !strings.Contains(out, "Combined EasyList") {
		t.Error("render missing list labels")
	}
}

func TestTopFeatures(t *testing.T) {
	_, r := lab(t)
	c := &Corpus{Positives: r.CorpusPos, Negatives: r.CorpusNeg}
	rows, err := TopFeatures(c, features.SetKeyword, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Scores must be sorted descending and positive at the top.
	for i := 1; i < len(rows); i++ {
		if rows[i].Chi2 > rows[i-1].Chi2 {
			t.Fatal("importance not sorted")
		}
	}
	if rows[0].Chi2 <= 0 {
		t.Fatal("top feature has no discriminative power")
	}
	// The anti-adblock fingerprint should surface geometry or injection
	// API keywords near the top.
	joined := ""
	for _, row := range rows {
		joined += row.Feature + " "
	}
	found := false
	for _, marker := range []string{"offset", "client", "setAttribute", "onerror", "cookie", "getElementById", "createElement"} {
		if strings.Contains(joined, marker) {
			found = true
		}
	}
	if !found {
		t.Errorf("top keyword features carry no bait fingerprint: %s", joined)
	}
	_ = RenderTopFeatures(rows, features.SetKeyword)
}

func TestCompareBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline CV is slow")
	}
	_, r := lab(t)
	c := &Corpus{Positives: r.CorpusPos, Negatives: r.CorpusNeg}
	res, err := CompareBaselines(c, 7, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The ML classifier must beat signatures on randomized builds.
	if res.MLTP <= res.SignatureTP {
		t.Errorf("ML TP %.2f should exceed signature TP %.2f", res.MLTP, res.SignatureTP)
	}
	if res.MLTP < 0.9 {
		t.Errorf("ML TP %.2f too low", res.MLTP)
	}
	if len(res.Matched) == 0 {
		t.Error("no signature hits recorded")
	}
	if !strings.Contains(res.Render(), "signatures") {
		t.Error("render malformed")
	}
}

func TestCircumvention(t *testing.T) {
	l, _ := lab(t)
	res := l.Circumvention(0, time.Time{})
	if res.Deployed == 0 {
		t.Fatal("no deployed sites")
	}
	aak := res.ProtectedRate("Anti-Adblock Killer")
	cel := res.ProtectedRate("Combined EasyList")
	none := res.ProtectedRate("(no anti-adblock list)")
	// AAK's broad vendor rules protect far more users than CEL; without
	// any anti-adblock list nearly every deployed site walls the user.
	if aak <= cel {
		t.Errorf("AAK protected %.2f should exceed CEL %.2f", aak, cel)
	}
	if none >= aak {
		t.Errorf("baseline %.2f should be the worst (AAK %.2f)", none, aak)
	}
	if aak < 0.5 {
		t.Errorf("AAK protected rate %.2f suspiciously low", aak)
	}
	if !strings.Contains(res.Render(), "circumvented") {
		t.Error("render malformed")
	}
}

func TestPaperComparison(t *testing.T) {
	l, r := lab(t)
	live, err := l.RunLive(context.Background(), LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := l.Collect(r, live, l.Fig7(0), nil, nil)
	rows := PaperComparison(s, l.Scale())
	if len(rows) < 20 {
		t.Fatalf("comparison rows = %d", len(rows))
	}
	// Count-valued rows should land within 4x of the scaled paper value
	// for the coverage headline (shape reproduction).
	for _, row := range rows {
		if row.Metric == "AAK HTTP-triggered sites (Jul 2016)" {
			ratio := row.Measured / row.Paper
			if ratio < 0.25 || ratio > 4 {
				t.Errorf("Fig6a AAK ratio %.2f out of shape band", ratio)
			}
		}
	}
	out := RenderComparison(rows)
	if !strings.Contains(out, "measured") {
		t.Error("render malformed")
	}
}
