package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/simworld"
)

var (
	labOnce sync.Once
	testLab *Lab
	retro   *RetroResult
	retroE  error
)

// lab builds one shared 1/20-scale lab (top-5K universe → top-250 crawl)
// plus its retrospective run for all tests.
func lab(t *testing.T) (*Lab, *RetroResult) {
	t.Helper()
	labOnce.Do(func() {
		testLab = NewLab(simworld.Scaled(2, 20))
		retro, retroE = testLab.RunRetrospective(context.Background(), RetroConfig{
			Months: testLab.RetroMonths(2),
		})
	})
	if retroE != nil {
		t.Fatalf("retrospective: %v", retroE)
	}
	return testLab, retro
}

func TestFig1Shapes(t *testing.T) {
	l, _ := lab(t)
	aak := Fig1(l.Lists.AAK, l.World.Cfg.End)
	el := Fig1(l.Lists.EasyListAA, l.World.Cfg.End)
	awrl := Fig1(l.Lists.AWRL, l.World.Cfg.End)

	if len(aak.Points) == 0 || len(el.Points) == 0 || len(awrl.Points) == 0 {
		t.Fatal("empty Figure 1 series")
	}
	// Growth: last total must exceed first.
	for _, r := range []*Fig1Result{aak, el, awrl} {
		first := r.Points[0].Total
		last := r.Points[len(r.Points)-1].Total
		if last <= first {
			t.Errorf("%s does not grow: %d → %d", r.Name, first, last)
		}
	}
	// Final mixes: EasyList-AA HTTP-heavy, AAK mixed, AWRL HTML-heavy.
	elHTML := el.FinalShares()[abp.ClassHTMLWithDomain] + el.FinalShares()[abp.ClassHTMLNoDomain]
	awrlHTML := awrl.FinalShares()[abp.ClassHTMLWithDomain] + awrl.FinalShares()[abp.ClassHTMLNoDomain]
	aakHTML := aak.FinalShares()[abp.ClassHTMLWithDomain] + aak.FinalShares()[abp.ClassHTMLNoDomain]
	if !(awrlHTML > aakHTML && aakHTML > elHTML) {
		t.Errorf("HTML shares out of order: AWRL %.2f, AAK %.2f, EL %.2f",
			awrlHTML, aakHTML, elHTML)
	}
	if !strings.Contains(aak.Render(), "Figure 1") {
		t.Error("render missing header")
	}
}

func TestTable1Shape(t *testing.T) {
	l, _ := lab(t)
	tbl := l.Table1()
	for _, name := range ListNames {
		counts := tbl.Counts[name]
		total := 0
		for _, c := range counts {
			total += c
		}
		if total < 20 {
			t.Errorf("%s lists only %d domains", name, total)
		}
		// Table 1: the deep buckets dominate.
		if counts[">1M"]+counts["100K-1M"] <= counts["1-5K"] {
			t.Errorf("%s: deep buckets (%d+%d) should outnumber top-5K (%d)",
				name, counts[">1M"], counts["100K-1M"], counts["1-5K"])
		}
	}
	if !strings.Contains(tbl.Render(), "Table 1") {
		t.Error("render missing header")
	}
}

func TestFig2Shape(t *testing.T) {
	l, _ := lab(t)
	f := l.Fig2()
	for _, name := range ListNames {
		sum := 0.0
		for _, p := range f.Percent[name] {
			sum += p
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: category percentages sum to %.1f", name, sum)
		}
	}
	_ = f.Render()
}

func TestOverlapShape(t *testing.T) {
	l, _ := lab(t)
	o := l.Overlap()
	if o.Overlap <= 0 || o.Overlap >= o.AAKDomains {
		t.Errorf("overlap = %d of %d", o.Overlap, o.AAKDomains)
	}
	if o.CELExceptionRatio <= o.AAKExceptionRatio {
		t.Errorf("CEL ratio %.1f should exceed AAK ratio %.1f",
			o.CELExceptionRatio, o.AAKExceptionRatio)
	}
	_ = o.Render()
}

func TestFig3Shape(t *testing.T) {
	l, _ := lab(t)
	f := l.Fig3()
	if len(f.DiffsDays) == 0 {
		t.Fatal("no shared domains")
	}
	if f.CELFirst <= f.AAKFirst {
		t.Errorf("CEL first %d vs AAK first %d: CEL should lead", f.CELFirst, f.AAKFirst)
	}
	_ = f.Render()
}

func TestFig5Shape(t *testing.T) {
	_, r := lab(t)
	if len(r.Months) < 10 {
		t.Fatalf("months = %d", len(r.Months))
	}
	first, last := r.Months[0], r.Months[len(r.Months)-1]
	missFirst := first.NotArchived + first.Outdated + first.Partial
	missLast := last.NotArchived + last.Outdated + last.Partial
	// Figure 5: total missing decreases (1,524 → 984 at paper scale).
	if missLast >= missFirst {
		t.Errorf("missing snapshots should fall: %d → %d", missFirst, missLast)
	}
	if last.Outdated >= first.Outdated {
		t.Errorf("outdated should fall: %d → %d", first.Outdated, last.Outdated)
	}
	if r.Excluded == 0 {
		t.Error("no excluded domains")
	}
	_ = r.RenderFig5()
}

func TestFig6Shape(t *testing.T) {
	l, r := lab(t)
	last := r.Months[len(r.Months)-1]
	aak, cel := last.HTTPTriggered["Anti-Adblock Killer"], last.HTTPTriggered["Combined EasyList"]
	// Figure 6a: AAK ≫ CEL (331 vs 16 at paper scale; ≈17 vs ≈1 here).
	if aak <= cel {
		t.Errorf("AAK HTTP %d should exceed CEL HTTP %d", aak, cel)
	}
	if aak < 5 {
		t.Errorf("AAK HTTP triggers = %d, want ≥ 5 at 1/20 scale", aak)
	}
	// Before AAK existed its counts are zero.
	for _, m := range r.Months {
		if m.Month.Year() < 2014 && m.HTTPTriggered["Anti-Adblock Killer"] != 0 {
			t.Errorf("AAK triggered in %s before the list existed", m.Month)
		}
	}
	// Figure 6b: HTML triggers stay near zero for both lists.
	for _, m := range r.Months {
		for _, n := range ListNames {
			if m.HTMLTriggered[n] > aak {
				t.Errorf("HTML triggers (%d) should stay far below HTTP", m.HTMLTriggered[n])
			}
		}
	}
	// §4.2: the matched sites overwhelmingly use third-party scripts.
	aakSites := len(r.FirstMatch["Anti-Adblock Killer"])
	if aakSites > 0 {
		share := float64(r.ThirdPartyMatched["Anti-Adblock Killer"]) / float64(aakSites)
		if share < 0.7 {
			t.Errorf("third-party share = %.2f, want high (>98%% in paper)", share)
		}
	}
	_ = l
	_ = r.RenderFig6()
}

func TestFig7Shape(t *testing.T) {
	l, _ := lab(t)
	f := l.Fig7(0)
	for _, n := range ListNames {
		if len(f.Delays[n]) == 0 {
			t.Fatalf("%s: no detection delays", n)
		}
	}
	cel, aak := f.CDFs["Combined EasyList"], f.CDFs["Anti-Adblock Killer"]
	// Figure 7: CEL is more prompt — its CDF dominates at 100 days.
	if cel.At(100) <= aak.At(100) {
		t.Errorf("CEL CDF(100)=%.2f should exceed AAK CDF(100)=%.2f",
			cel.At(100), aak.At(100))
	}
	// Both lists detect a fraction before deployment (generic rules).
	if cel.At(0) <= 0.05 || aak.At(0) <= 0.02 {
		t.Errorf("before-deployment fractions too low: CEL %.2f AAK %.2f",
			cel.At(0), aak.At(0))
	}
	_ = f.Render()
}

func TestCorpusCollected(t *testing.T) {
	_, r := lab(t)
	if len(r.CorpusPos) < 10 {
		t.Fatalf("positives = %d, want a usable corpus", len(r.CorpusPos))
	}
	if len(r.CorpusNeg) < len(r.CorpusPos) {
		t.Fatalf("negatives = %d < positives = %d", len(r.CorpusNeg), len(r.CorpusPos))
	}
}

func TestLiveCoverage(t *testing.T) {
	l, _ := lab(t)
	res, err := l.RunLive(context.Background(), LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable >= res.Total || res.Reachable < res.Total*9/10 {
		t.Fatalf("reachable = %d of %d", res.Reachable, res.Total)
	}
	aak, cel := res.HTTPTriggered["Anti-Adblock Killer"], res.HTTPTriggered["Combined EasyList"]
	// §4.3 at 1/20 scale: AAK ≈ 247, CEL ≈ 9.
	if aak <= cel*3 {
		t.Errorf("AAK %d should dwarf CEL %d", aak, cel)
	}
	frac := float64(aak) / float64(res.Reachable)
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("AAK live coverage = %.3f, want ≈ 0.05", frac)
	}
	if res.ThirdPartyShare["Anti-Adblock Killer"] < 0.7 {
		t.Errorf("AAK third-party share = %.2f, want ≈ 0.97",
			res.ThirdPartyShare["Anti-Adblock Killer"])
	}
	if len(res.Scripts) == 0 {
		t.Error("no live scripts collected")
	}
	_ = res.Render()
}
