package experiments

import (
	"strings"
	"testing"

	"adwars/internal/abp"
)

func TestDeadRules(t *testing.T) {
	l, _ := lab(t)
	res := l.DeadRules(0)
	if res.Sites == 0 || res.Requests == 0 {
		t.Fatalf("empty replay: %d sites, %d requests", res.Sites, res.Requests)
	}
	if len(res.Lists) != len(ListNames) {
		t.Fatalf("got %d lists, want %d", len(res.Lists), len(ListNames))
	}
	for _, dl := range res.Lists {
		if dl.HTTPRules == 0 {
			t.Errorf("%s: no HTTP rules", dl.Name)
		}
		if dl.FiredRules == 0 || dl.TotalHits == 0 {
			t.Errorf("%s: replay fired nothing (%d rules, %d hits)", dl.Name, dl.FiredRules, dl.TotalHits)
		}
		// The paper-motivating finding: the majority of rules never fire.
		if dl.DeadFraction <= 0.5 || dl.DeadFraction >= 1 {
			t.Errorf("%s: dead fraction %.3f outside (0.5, 1)", dl.Name, dl.DeadFraction)
		}
		// Compacting around the fired rules must shrink the hot working set.
		if dl.HotBytes >= dl.FlatBytes {
			t.Errorf("%s: hot working set %d B not below flat %d B", dl.Name, dl.HotBytes, dl.FlatBytes)
		}
	}
	render := res.Render()
	if !strings.Contains(render, "Dead rules") || !strings.Contains(render, res.Lists[0].Name) {
		t.Errorf("render missing headline or list name:\n%s", render)
	}
}

// TestDeadRulesTieredTransparent replays the experiment traffic through a
// usage-compacted tiered list and demands verdict-identical answers to the
// untiered list — the replay-level half of the tiering differential.
func TestDeadRulesTieredTransparent(t *testing.T) {
	l, _ := lab(t)
	for _, name := range ListNames {
		latest := l.histories()[name].LatestList()
		plain := abp.NewList(name, latest.Rules())
		plain.EnableUsage()

		type verdict struct {
			dec  abp.Decision
			rule string
		}
		replay := func(list *abp.List) []verdict {
			var out []verdict
			var hits []abp.Hit
			for _, d := range l.World.TopDomains(200) {
				page, ok := l.World.LivePage(d)
				if !ok {
					continue
				}
				for _, rq := range page.Requests {
					hits = list.AppendHits(hits[:0], abp.Request{URL: rq.URL, Type: rq.Type, PageDomain: d})
					dec, r, ord := abp.DecideHits(hits)
					list.RecordUsage(ord)
					v := verdict{dec: dec}
					if r != nil {
						v.rule = r.Raw
					}
					out = append(out, v)
				}
			}
			return out
		}

		want := replay(plain)
		counts := plain.Usage().Counts()
		hot := plain.CompileTiered(func(ord int) bool { return counts[ord] > 0 })
		cold := plain.CompileTiered(nil)
		for label, tiered := range map[string]*abp.List{"usage-hot": hot, "all-cold": cold} {
			got := replay(tiered)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d verdicts, want %d", name, label, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: verdict %d = %+v, want %+v", name, label, i, got[i], want[i])
				}
			}
		}
	}
}
