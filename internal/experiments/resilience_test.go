package experiments

import (
	"context"
	"path/filepath"
	"testing"

	"adwars/internal/crawler"
	"adwars/internal/simworld"
	"adwars/internal/wayback"
)

// resilienceLab builds a small private lab (top-100 crawl) so fault and
// checkpoint runs don't disturb the shared test lab.
func resilienceLab() *Lab { return NewLab(simworld.Scaled(3, 50)) }

// TestRetroFaultEquivalence is the PR's headline acceptance claim at full
// pipeline scope: a 10% transient fault rate must not change a single
// Figure 5 or Figure 6 number, because the crawl engine retries every
// injected fault to completion.
func TestRetroFaultEquivalence(t *testing.T) {
	l := resilienceLab()
	months := l.RetroMonths(6)
	clean, err := l.RunRetrospective(context.Background(), RetroConfig{Months: months})
	if err != nil {
		t.Fatal(err)
	}

	var metrics crawler.Metrics
	faulty, err := l.RunRetrospective(context.Background(), RetroConfig{
		Months:  months,
		Faults:  wayback.DefaultFaultConfig(0.10, 0), // Seed 0: inherit lab seed
		Metrics: &metrics,
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := faulty.RenderFig5(), clean.RenderFig5(); got != want {
		t.Errorf("Figure 5 diverged under faults:\nclean:\n%s\nfaulty:\n%s", want, got)
	}
	if got, want := faulty.RenderFig6(), clean.RenderFig6(); got != want {
		t.Errorf("Figure 6 diverged under faults:\nclean:\n%s\nfaulty:\n%s", want, got)
	}
	snap := metrics.Snapshot()
	if snap.TransientFailures == 0 || snap.Retries == 0 {
		t.Fatalf("fault injection idle: %s", snap)
	}
	if snap.RetriesExhausted != 0 {
		t.Fatalf("%d requests exhausted the retry budget (equivalence broken)", snap.RetriesExhausted)
	}
	// The corpora feed §5; they must survive faults unchanged too.
	if len(faulty.CorpusPos) != len(clean.CorpusPos) || len(faulty.CorpusNeg) != len(clean.CorpusNeg) {
		t.Errorf("corpus sizes diverged: pos %d/%d neg %d/%d",
			len(faulty.CorpusPos), len(clean.CorpusPos),
			len(faulty.CorpusNeg), len(clean.CorpusNeg))
	}
}

// TestRetroCheckpointResume interrupts the study after a prefix of months,
// then resumes from the journal: the final figures must be byte-identical
// to an uninterrupted run, with the journaled site-months restored rather
// than refetched.
func TestRetroCheckpointResume(t *testing.T) {
	faults := wayback.DefaultFaultConfig(0.10, 0)
	l := resilienceLab()
	months := l.RetroMonths(6)
	want, err := l.RunRetrospective(context.Background(), RetroConfig{
		Months: months, Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "retro.jsonl")
	// "Killed" first run: only the first 4 months complete.
	if _, err := l.RunRetrospective(context.Background(), RetroConfig{
		Months: months[:4], Faults: faults, CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}

	var metrics crawler.Metrics
	got, err := l.RunRetrospective(context.Background(), RetroConfig{
		Months: months, Faults: faults,
		CheckpointPath: path, Resume: true, Metrics: &metrics,
	})
	if err != nil {
		t.Fatal(err)
	}

	if metrics.Snapshot().Resumed == 0 {
		t.Fatal("resume refetched everything instead of restoring the journal")
	}
	if g, w := got.RenderFig5(), want.RenderFig5(); g != w {
		t.Errorf("Figure 5 diverged after resume:\nwant:\n%s\ngot:\n%s", w, g)
	}
	if g, w := got.RenderFig6(), want.RenderFig6(); g != w {
		t.Errorf("Figure 6 diverged after resume:\nwant:\n%s\ngot:\n%s", w, g)
	}
}
