package experiments

import (
	"math/rand"
	"testing"

	"adwars/internal/features"
	"adwars/internal/ml"
)

func newBenchRng() *rand.Rand { return rand.New(rand.NewSource(7)) }

// benchPipelineCorpus sizes the bench corpus: small under -short (the
// `make verify` smoke) and large enough to exercise the kernel cache and
// AdaBoost rounds otherwise.
func benchPipelineCorpus(b *testing.B) *Corpus {
	b.Helper()
	if testing.Short() {
		return pipelineCorpus(10, 40, 11)
	}
	return pipelineCorpus(20, 120, 11)
}

func benchDatasetKeyword(b *testing.B, c *Corpus, pipe PipelineConfig) *features.Dataset {
	b.Helper()
	ds, err := buildDataset(c, features.SetKeyword, 500, pipe)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// benchTrainCV runs the headline train+CV workload (AdaBoost+SVM, 10-fold)
// under one pipeline configuration and asserts every iteration reproduces
// the same confusion — the bench doubles as a determinism check.
func benchTrainCV(b *testing.B, pipe PipelineConfig) {
	c := benchPipelineCorpus(b)
	ds := benchDatasetKeyword(b, c, pipe)
	folds := 10
	if n := positiveCount(ds); n < folds {
		folds = n
	}
	first, err := crossValidate(ds, folds, 7, pipe, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf, err := crossValidate(ds, folds, 7, pipe, true)
		if err != nil {
			b.Fatal(err)
		}
		if conf != first {
			b.Fatalf("nondeterministic CV: %+v != %+v", conf, first)
		}
	}
}

// BenchmarkMLTrainCVSequential is the reference pipeline: one worker, no
// kernel cache, legacy per-fold cross-validation. This is the baseline the
// speedup acceptance in BENCH_ml.json is computed against.
func BenchmarkMLTrainCVSequential(b *testing.B) {
	benchTrainCV(b, PipelineConfig{Sequential: true})
}

// BenchmarkMLTrainCVCached is the optimized pipeline: shared Gram matrix
// across AdaBoost rounds and CV folds, cached kernel evaluations, worker
// fan-out over folds.
func BenchmarkMLTrainCVCached(b *testing.B) {
	benchTrainCV(b, PipelineConfig{})
}

// BenchmarkMLExtract measures corpus feature extraction (parse + unpack +
// Extract) through the parallel fan-out.
func BenchmarkMLExtract(b *testing.B) {
	c := benchPipelineCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildDatasetRaw(c, features.SetKeyword, PipelineConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLSelect measures the selection pipeline (variance filter,
// hash-based dedup, chi-square top-k) on the raw keyword dataset.
func BenchmarkMLSelect(b *testing.B) {
	c := benchPipelineCorpus(b)
	raw, err := buildDatasetRaw(c, features.SetKeyword, PipelineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	pipe := PipelineConfig{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw.SelectPipelineWorkers(500, pipe.workers())
	}
}

// BenchmarkMLTrainAdaBoostCached isolates ensemble training (no CV) with
// the shared-Gram cache, for comparison against internal/ml's uncached
// component benchmarks.
func BenchmarkMLTrainAdaBoostCached(b *testing.B) {
	c := benchPipelineCorpus(b)
	pipe := PipelineConfig{}
	ds := benchDatasetKeyword(b, c, pipe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := newBenchRng()
		if _, err := ml.TrainAdaBoost(ds, pipe.adaboost(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLTrainAdaBoostUncached is the same workload with the cache
// disabled — the per-component cost the Gram cache removes.
func BenchmarkMLTrainAdaBoostUncached(b *testing.B) {
	c := benchPipelineCorpus(b)
	pipe := PipelineConfig{Sequential: true}
	ds := benchDatasetKeyword(b, c, pipe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := newBenchRng()
		if _, err := ml.TrainAdaBoost(ds, pipe.adaboost(), rng); err != nil {
			b.Fatal(err)
		}
	}
}
