// Package experiments implements one runner per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). A Lab
// bundles the synthetic world and the generated filter-list histories;
// each runner returns a typed result plus a text rendering that mirrors
// the paper's rows/series.
package experiments

import (
	"time"

	"adwars/internal/abp"
	"adwars/internal/listgen"
	"adwars/internal/simworld"
	"adwars/internal/stats"
)

// Lab holds the world and lists every experiment runs against.
type Lab struct {
	World *simworld.World
	Lists *listgen.Lists
	Seed  int64
}

// NewLab builds a lab from a world configuration. Use
// simworld.DefaultConfig for paper scale or simworld.Scaled for faster
// runs (counts scale down proportionally).
func NewLab(cfg simworld.Config) *Lab {
	w := simworld.New(cfg)
	return &Lab{World: w, Lists: listgen.Generate(w, cfg.Seed), Seed: cfg.Seed}
}

// Scale is the lab's size relative to the paper (1.0 = full top-100K
// universe).
func (l *Lab) Scale() float64 {
	return float64(l.World.Cfg.UniverseSize) / 100_000
}

// RetroMonths returns the monthly crawl schedule, Aug 2011 – Jul 2016,
// sampled at the given stride (1 = every month like the paper).
func (l *Lab) RetroMonths(stride int) []time.Time {
	if stride < 1 {
		stride = 1
	}
	all := stats.MonthsBetween(l.World.Cfg.Start, l.World.Cfg.End)
	var out []time.Time
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	// Always include the final month; the paper's headline numbers are
	// at Jul 2016.
	if len(out) == 0 || !out[len(out)-1].Equal(all[len(all)-1]) {
		out = append(out, all[len(all)-1])
	}
	return out
}

// histories returns the two lists §4 compares, by display name.
func (l *Lab) histories() map[string]*abp.History {
	return map[string]*abp.History{
		"Anti-Adblock Killer": l.Lists.AAK,
		"Combined EasyList":   l.Lists.Combined,
	}
}

// listsAt returns the compiled list versions in force at time t, keyed by
// display name; an entry is nil before that list existed. Compiles come
// from each history's per-revision cache, so the 60-month replay compiles
// each revision once no matter how many months or shards consult it.
func (l *Lab) listsAt(t time.Time) map[string]*abp.List {
	out := make(map[string]*abp.List, 2)
	for name, h := range l.histories() {
		out[name] = h.ListAt(t)
	}
	return out
}

// ListNames orders the two list names as the paper's figures do.
var ListNames = []string{"Combined EasyList", "Anti-Adblock Killer"}
