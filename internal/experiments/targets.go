package experiments

import (
	"fmt"
	"strings"

	"adwars/internal/abp"
)

// Summary gathers the headline metrics of one full experiment run.
type Summary struct {
	// §3 list statistics.
	AAKRulesFinal, EasyListAARulesFinal, AWRLRulesFinal int
	AAKDomains, CELDomains, Overlap                     int
	AAKExcRatio, CELExcRatio                            float64
	CELFirst, AAKFirst                                  int

	// §4 retrospective coverage.
	MissingFirst, MissingLast int
	Fig6aAAK, Fig6aCEL        int
	Fig6bAAK, Fig6bCEL        int

	// §4.3 live coverage.
	LiveAAK, LiveCEL         int
	LiveHTMLAAK, LiveHTMLCEL int
	LiveThirdPartyAAK        float64

	// Figure 7.
	Fig7CEL100, Fig7AAK100 float64
	Fig7CEL0, Fig7AAK0     float64

	// §5 classifier.
	CorpusPositives int
	BestTP, BestFP  float64
	LiveModelTPRate float64
}

// Collect assembles a Summary from experiment results (any of which may be
// nil, leaving the corresponding fields zero).
func (l *Lab) Collect(retro *RetroResult, live *LiveResult, fig7 *Fig7Result, rows []Table3Row, liveTest *LiveTestResult) Summary {
	var s Summary
	if rev, ok := l.Lists.AAK.Latest(); ok {
		s.AAKRulesFinal = countRules(rev.Rules)
	}
	if rev, ok := l.Lists.EasyListAA.At(l.World.Cfg.End); ok {
		s.EasyListAARulesFinal = countRules(rev.Rules)
	}
	if rev, ok := l.Lists.AWRL.At(l.World.Cfg.End); ok {
		s.AWRLRulesFinal = countRules(rev.Rules)
	}
	o := l.Overlap()
	s.AAKDomains, s.CELDomains, s.Overlap = o.AAKDomains, o.CELDomains, o.Overlap
	s.AAKExcRatio, s.CELExcRatio = o.AAKExceptionRatio, o.CELExceptionRatio
	f3 := l.Fig3()
	s.CELFirst, s.AAKFirst = f3.CELFirst, f3.AAKFirst

	if retro != nil && len(retro.Months) > 0 {
		first, last := retro.Months[0], retro.Months[len(retro.Months)-1]
		s.MissingFirst = first.NotArchived + first.Outdated + first.Partial
		s.MissingLast = last.NotArchived + last.Outdated + last.Partial
		s.Fig6aAAK = last.HTTPTriggered["Anti-Adblock Killer"]
		s.Fig6aCEL = last.HTTPTriggered["Combined EasyList"]
		s.Fig6bAAK = last.HTMLTriggered["Anti-Adblock Killer"]
		s.Fig6bCEL = last.HTMLTriggered["Combined EasyList"]
		s.CorpusPositives = len(retro.CorpusPos)
	}
	if live != nil {
		s.LiveAAK = live.HTTPTriggered["Anti-Adblock Killer"]
		s.LiveCEL = live.HTTPTriggered["Combined EasyList"]
		s.LiveHTMLAAK = live.HTMLTriggered["Anti-Adblock Killer"]
		s.LiveHTMLCEL = live.HTMLTriggered["Combined EasyList"]
		s.LiveThirdPartyAAK = live.ThirdPartyShare["Anti-Adblock Killer"]
	}
	if fig7 != nil {
		if c := fig7.CDFs["Combined EasyList"]; c != nil {
			s.Fig7CEL0, s.Fig7CEL100 = c.At(0), c.At(100)
		}
		if c := fig7.CDFs["Anti-Adblock Killer"]; c != nil {
			s.Fig7AAK0, s.Fig7AAK100 = c.At(0), c.At(100)
		}
	}
	if len(rows) > 0 {
		best := BestRow(rows)
		s.BestTP, s.BestFP = best.TPRate, best.FPRate
	}
	if liveTest != nil {
		s.LiveModelTPRate = liveTest.TPRate
	}
	return s
}

func countRules(rules []*abp.Rule) int {
	n := 0
	for _, r := range rules {
		if r.Kind != abp.KindComment && r.Kind != abp.KindInvalid {
			n++
		}
	}
	return n
}

// ComparisonRow is one paper-vs-measured line.
type ComparisonRow struct {
	Artifact string
	Metric   string
	Paper    float64
	Measured float64
}

// ratio returns measured/paper ("shape factor"); 1.0 is a perfect match.
func (r ComparisonRow) ratio() float64 {
	if r.Paper == 0 {
		return 0
	}
	return r.Measured / r.Paper
}

// PaperComparison lines a run's summary up against the numbers the paper
// reports. scale rescales count-valued paper targets for scaled worlds
// (rates and ratios are scale-free).
func PaperComparison(s Summary, scale float64) []ComparisonRow {
	c := func(artifact, metric string, paper, measured float64) ComparisonRow {
		return ComparisonRow{Artifact: artifact, Metric: metric, Paper: paper, Measured: measured}
	}
	k := scale
	return []ComparisonRow{
		c("Fig 1a", "AAK rules (Jul 2016)", 1811*k, float64(s.AAKRulesFinal)),
		c("Fig 1b", "AWRL rules (Jul 2016)", 167*k, float64(s.AWRLRulesFinal)),
		c("Fig 1c", "EasyList-AA rules (Jul 2016)", 1317*k, float64(s.EasyListAARulesFinal)),
		c("§3.3", "AAK listed domains", 1415*k, float64(s.AAKDomains)),
		c("§3.3", "CEL listed domains", 1394*k, float64(s.CELDomains)),
		c("§3.3", "shared domains", 282*k, float64(s.Overlap)),
		c("§3.3", "AAK exception ratio", 1.0, s.AAKExcRatio),
		c("§3.3", "CEL exception ratio", 4.0, s.CELExcRatio),
		c("Fig 3", "shared domains first in CEL", 185*k, float64(s.CELFirst)),
		c("Fig 3", "shared domains first in AAK", 92*k, float64(s.AAKFirst)),
		c("Fig 5", "missing snapshots (Aug 2011)", 1524*k, float64(s.MissingFirst)),
		c("Fig 5", "missing snapshots (Jul 2016)", 984*k, float64(s.MissingLast)),
		c("Fig 6a", "AAK HTTP-triggered sites (Jul 2016)", 331*k, float64(s.Fig6aAAK)),
		c("Fig 6a", "CEL HTTP-triggered sites (Jul 2016)", 16*k, float64(s.Fig6aCEL)),
		c("Fig 6b", "AAK HTML-triggered sites (≤5)", 5*k, float64(s.Fig6bAAK)),
		c("Fig 6b", "CEL HTML-triggered sites (≤4)", 4*k, float64(s.Fig6bCEL)),
		c("Fig 7", "CEL CDF at 100 days", 0.82, s.Fig7CEL100),
		c("Fig 7", "AAK CDF at 100 days", 0.32, s.Fig7AAK100),
		c("Fig 7", "CEL CDF at 0 days", 0.42, s.Fig7CEL0),
		c("Fig 7", "AAK CDF at 0 days", 0.23, s.Fig7AAK0),
		c("§4.3", "AAK live HTTP-triggered", 4931*k, float64(s.LiveAAK)),
		c("§4.3", "CEL live HTTP-triggered", 182*k, float64(s.LiveCEL)),
		c("§4.3", "AAK live HTML-triggered", 11*k, float64(s.LiveHTMLAAK)),
		c("§4.3", "CEL live HTML-triggered", 15*k, float64(s.LiveHTMLCEL)),
		c("§4.3", "AAK third-party share", 0.97, s.LiveThirdPartyAAK),
		c("§5", "corpus positives", 372*k, float64(s.CorpusPositives)),
		c("Table 3", "best TP rate", 0.997, s.BestTP),
		c("Table 3", "best FP rate", 0.032, s.BestFP),
		c("§5", "live model TP rate", 0.925, s.LiveModelTPRate),
	}
}

// RenderComparison prints the paper-vs-measured table.
func RenderComparison(rows []ComparisonRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-38s %10s %10s %7s\n",
		"artifact", "metric", "paper", "measured", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-38s %10.2f %10.2f %6.2fx\n",
			r.Artifact, r.Metric, r.Paper, r.Measured, r.ratio())
	}
	return b.String()
}
