package experiments

import (
	"fmt"
	"sort"
	"strings"

	"adwars/internal/abp"
	"adwars/internal/features"
)

// ---- §3.3 exhibit: differing implementations for shared domains ----

// SharedDomainRules shows, for one domain listed by both lists, each
// list's rules — the paper's Codes 9 and 10 (yocast.tv, pagefair.com).
type SharedDomainRules struct {
	Domain string
	AAK    []string
	CEL    []string
}

// SharedRuleExhibit samples up to n shared domains and renders how each
// list implements rules for them, demonstrating §3.3's finding that "both
// filter lists often have different rules to circumvent anti-adblockers
// even for the same set of domains".
func (l *Lab) SharedRuleExhibit(n int) []SharedDomainRules {
	aak := l.Lists.AAK.LatestList()
	cel := l.Lists.Combined.LatestList()

	inAAK := map[string]bool{}
	for _, d := range aak.Domains() {
		inAAK[d] = true
	}
	var shared []string
	for _, d := range cel.Domains() {
		if inAAK[d] {
			shared = append(shared, d)
		}
	}
	sort.Strings(shared)

	var out []SharedDomainRules
	for _, d := range shared {
		aakRules := ruleTexts(aak.RulesForDomain(d))
		celRules := ruleTexts(cel.RulesForDomain(d))
		// Only exhibit domains where the implementations differ.
		if len(aakRules) == 0 || len(celRules) == 0 || sameStrings(aakRules, celRules) {
			continue
		}
		out = append(out, SharedDomainRules{Domain: d, AAK: aakRules, CEL: celRules})
		if len(out) == n {
			break
		}
	}
	return out
}

func ruleTexts(rules []*abp.Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Raw
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenderSharedRules prints the exhibit in the style of Codes 9 and 10.
func RenderSharedRules(rows []SharedDomainRules) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3 — differing rule implementations for shared domains (%d samples)\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "domain %s\n", r.Domain)
		fmt.Fprintf(&b, "  ! Combined EasyList\n")
		for _, rule := range r.CEL {
			fmt.Fprintf(&b, "  %s\n", rule)
		}
		fmt.Fprintf(&b, "  ! Anti-Adblock Killer\n")
		for _, rule := range r.AAK {
			fmt.Fprintf(&b, "  %s\n", rule)
		}
	}
	return b.String()
}

// ---- §5 exhibit: most-discriminative features ----

// FeatureImportance is one feature's chi-square score over the corpus.
type FeatureImportance struct {
	Feature string
	Chi2    float64
}

// TopFeatures builds the corpus dataset under a feature set and returns
// the k features with the highest chi-square scores — what a filter list
// author would read to understand the classifier's fingerprint.
func TopFeatures(c *Corpus, set features.Set, k int) ([]FeatureImportance, error) {
	corpus := c.trim(0, 1)
	ds, err := buildDataset(corpus, set, 1<<30, PipelineConfig{})
	if err != nil {
		return nil, err
	}
	scores := ds.ChiSquare()
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if scores[order[i]] != scores[order[j]] {
			return scores[order[i]] > scores[order[j]]
		}
		return ds.Vocab[order[i]] < ds.Vocab[order[j]]
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]FeatureImportance, 0, k)
	for _, idx := range order[:k] {
		out = append(out, FeatureImportance{Feature: ds.Vocab[idx], Chi2: scores[idx]})
	}
	return out, nil
}

// RenderTopFeatures prints the feature importance table.
func RenderTopFeatures(rows []FeatureImportance, set features.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5 — top chi-square features (%s set)\n", set)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-52s %10.1f\n", r.Feature, r.Chi2)
	}
	return b.String()
}
