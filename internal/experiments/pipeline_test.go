package experiments

import (
	"math/rand"
	"reflect"
	"testing"

	"adwars/internal/antiadblock"
	"adwars/internal/features"
)

// pipelineCorpus generates a small labeled corpus straight from the script
// generators (no lab/crawl round trip) so the differential sweep stays
// fast enough for -race runs.
func pipelineCorpus(nPos, nNeg int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{}
	for i := 0; i < nPos; i++ {
		if i%2 == 0 {
			c.Positives = append(c.Positives, antiadblock.HTMLBaitScript("n", rng, antiadblock.GenOptions{}))
		} else {
			c.Positives = append(c.Positives, antiadblock.CanRunAdsScript("n", rng, antiadblock.GenOptions{}))
		}
	}
	kinds := antiadblock.BenignKinds()
	for i := 0; i < nNeg; i++ {
		c.Negatives = append(c.Negatives, antiadblock.BenignScript(kinds[i%len(kinds)], rng, antiadblock.GenOptions{}))
	}
	return c
}

// TestTable3ParallelMatchesSequential is the pipeline's end-to-end
// differential gate: the parallel kernel-cached sweep must produce exactly
// the sequential uncached reference's Table 3 rows — same TP/FP rates,
// same feature counts — at several worker counts and cache budgets.
func TestTable3ParallelMatchesSequential(t *testing.T) {
	c := pipelineCorpus(15, 60, 11)
	base := Table3Config{TopK: []int{20, 60}, Folds: 5, Seed: 4}

	seq := base
	seq.Pipeline = PipelineConfig{Sequential: true}
	want, err := Table3(c, seq)
	if err != nil {
		t.Fatal(err)
	}

	for _, pipe := range []PipelineConfig{
		{},                              // default: GOMAXPROCS workers, default cache
		{Workers: 1},                    // parallel path at width 1
		{Workers: 4},                    // oversubscribed fan-out
		{Workers: 3, KernelCache: 4096}, // small LRU budget
		{Workers: 2, KernelCache: -1},   // parallel but uncached
	} {
		cfg := base
		cfg.Pipeline = pipe
		got, err := Table3(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pipeline %+v: Table 3 rows diverge from sequential reference\ngot:  %+v\nwant: %+v",
				pipe, got, want)
		}
	}
}

// TestSelectedVocabularyMatchesSequential asserts the selection stage of
// the parallel pipeline chooses a byte-identical vocabulary: same raw
// dataset, same surviving columns, same top-k order.
func TestSelectedVocabularyMatchesSequential(t *testing.T) {
	c := pipelineCorpus(12, 48, 23).trim(0, 9)
	for _, set := range features.Sets {
		rawSeq, err := buildDatasetRaw(c, set, PipelineConfig{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		wantSel := rawSeq.SelectPipeline(50)
		for _, pipe := range []PipelineConfig{{}, {Workers: 6}} {
			raw, err := buildDatasetRaw(c, set, pipe)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(raw.Vocab, rawSeq.Vocab) {
				t.Fatalf("set %v pipe %+v: raw vocabulary diverges", set, pipe)
			}
			if !reflect.DeepEqual(raw.Samples, rawSeq.Samples) {
				t.Fatalf("set %v pipe %+v: samples diverge", set, pipe)
			}
			sel := raw.SelectPipelineWorkers(50, pipe.workers())
			if !reflect.DeepEqual(sel.Vocab, wantSel.Vocab) {
				t.Fatalf("set %v pipe %+v: selected vocabulary diverges\ngot:  %v\nwant: %v",
					set, pipe, sel.Vocab, wantSel.Vocab)
			}
		}
	}
}

// TestLiveModelTestParallelMatchesSequential covers the live-script leg:
// parallel extraction and cached training must reproduce the sequential
// result exactly.
func TestLiveModelTestParallelMatchesSequential(t *testing.T) {
	train := pipelineCorpus(14, 56, 31)
	rng := rand.New(rand.NewSource(5))
	var live []LiveScript
	for i := 0; i < 12; i++ {
		src := antiadblock.HTMLBaitScript("live", rng, antiadblock.GenOptions{})
		live = append(live, LiveScript{Rank: 6000 + i, Source: src})
	}
	want, err := LiveModelTest(train, live, 5000, 2, PipelineConfig{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := LiveModelTest(train, live, 5000, 2, PipelineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("live test diverges: parallel %+v, sequential %+v", *got, *want)
	}
}
