package experiments

import (
	"context"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/simworld"
)

// replayLab is a small dedicated lab so the determinism tests can crawl
// once and replay many times without disturbing the shared test lab.
func replayLab(t *testing.T) (*Lab, *ReplayRun) {
	t.Helper()
	l := NewLab(simworld.Scaled(7, 40))
	run, err := l.PrepareReplay(context.Background(), RetroConfig{
		Months: l.RetroMonths(6),
	})
	if err != nil {
		t.Fatalf("PrepareReplay: %v", err)
	}
	return l, run
}

// TestReplayShardDeterminism is the acceptance gate for the sharded
// pipeline: one shard, many shards, and the linear-scan ablation must all
// render byte-identical Figure 5/6 output and identical downstream
// accounting — sharding changes wall-clock, never results.
func TestReplayShardDeterminism(t *testing.T) {
	_, run := replayLab(t)
	seq := run.Run(1, false)
	par := run.Run(8, false)
	lin := run.Run(1, true)

	for _, other := range []struct {
		name string
		res  *RetroResult
	}{{"8 shards", par}, {"linear scan", lin}} {
		if got, want := other.res.RenderFig5(), seq.RenderFig5(); got != want {
			t.Errorf("%s: Figure 5 diverged\n--- sequential\n%s--- got\n%s", other.name, want, got)
		}
		if got, want := other.res.RenderFig6(), seq.RenderFig6(); got != want {
			t.Errorf("%s: Figure 6 diverged\n--- sequential\n%s--- got\n%s", other.name, want, got)
		}
		if got, want := len(other.res.CorpusPos), len(seq.CorpusPos); got != want {
			t.Errorf("%s: CorpusPos %d, want %d", other.name, got, want)
		}
		if got, want := len(other.res.CorpusNeg), len(seq.CorpusNeg); got != want {
			t.Errorf("%s: CorpusNeg %d, want %d", other.name, got, want)
		}
		for _, name := range ListNames {
			if got, want := other.res.ThirdPartyMatched[name], seq.ThirdPartyMatched[name]; got != want {
				t.Errorf("%s: ThirdPartyMatched[%s] = %d, want %d", other.name, name, got, want)
			}
			if got, want := len(other.res.FirstMatch[name]), len(seq.FirstMatch[name]); got != want {
				t.Errorf("%s: FirstMatch[%s] has %d sites, want %d", other.name, name, got, want)
			}
			for site, when := range seq.FirstMatch[name] {
				if !other.res.FirstMatch[name][site].Equal(when) {
					t.Errorf("%s: FirstMatch[%s][%s] = %v, want %v",
						other.name, name, site, other.res.FirstMatch[name][site], when)
				}
			}
		}
	}
	// The corpus order feeds §5's dataset split; it must match exactly,
	// not just in size.
	for i := range seq.CorpusPos {
		if par.CorpusPos[i] != seq.CorpusPos[i] {
			t.Fatalf("8 shards: CorpusPos[%d] differs", i)
		}
	}
}

// TestLiveShardDeterminism repeats the guarantee for the §4.3 crawl.
func TestLiveShardDeterminism(t *testing.T) {
	l := NewLab(simworld.Scaled(7, 40))
	seq, err := l.RunLive(context.Background(), LiveConfig{Workers: 2, Shards: 1})
	if err != nil {
		t.Fatalf("RunLive sequential: %v", err)
	}
	par, err := l.RunLive(context.Background(), LiveConfig{Workers: 2, Shards: 8})
	if err != nil {
		t.Fatalf("RunLive sharded: %v", err)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("live coverage diverged under sharding\n--- 1 shard\n%s--- 8 shards\n%s", want, got)
	}
	if len(par.Scripts) != len(seq.Scripts) {
		t.Fatalf("live scripts: %d vs %d", len(par.Scripts), len(seq.Scripts))
	}
	for i := range seq.Scripts {
		if par.Scripts[i] != seq.Scripts[i] {
			t.Fatalf("live Scripts[%d] differs: %v vs %v", i, par.Scripts[i], seq.Scripts[i])
		}
	}
}

// TestIndexedAgreesWithLinearOverHistories is the differential test the
// index satellite asks for: over the generated AAK/CEL histories and URL
// populations drawn from real world pages, the indexed all-matches lookup
// must return exactly what the linear reference scan returns.
func TestIndexedAgreesWithLinearOverHistories(t *testing.T) {
	l, _ := lab(t)
	months := l.RetroMonths(12)
	domains := l.World.TopDomains(60)
	for _, month := range months {
		for name, h := range l.histories() {
			list := h.ListAt(month)
			if list == nil {
				continue
			}
			for _, d := range domains {
				page, ok := l.World.PageAt(d, month)
				if !ok {
					continue
				}
				for _, rq := range page.Requests {
					q := abp.Request{URL: rq.URL, Type: rq.Type, PageDomain: d}
					got := list.MatchingHTTPRules(q)
					want := list.MatchingHTTPRulesLinear(q)
					if len(got) != len(want) {
						t.Fatalf("%s at %s: %q: indexed %d rules, linear %d",
							name, month.Format("2006-01"), rq.URL, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s at %s: %q: rule %d: %q vs %q",
								name, month.Format("2006-01"), rq.URL, i, got[i].Raw, want[i].Raw)
						}
					}
				}
			}
		}
	}
}
