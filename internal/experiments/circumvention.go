package experiments

import (
	"fmt"
	"strings"
	"time"

	"adwars/internal/abp"
	"adwars/internal/browser"
	"adwars/internal/listgen"
)

// CircumventionResult tallies, per anti-adblock list, what adblock users
// experience on deployed sites — the end-to-end effectiveness the filter
// lists exist to deliver (the trigger counts of §4 measure coverage; this
// measures consequence).
type CircumventionResult struct {
	At       time.Time
	Deployed int
	// Outcomes maps list name → outcome → site count.
	Outcomes map[string]map[browser.VisitOutcome]int
}

// Circumvention simulates an adblock user (general ad rules + one
// anti-adblock list) visiting every deployed top-N site at time t.
func (l *Lab) Circumvention(topN int, at time.Time) *CircumventionResult {
	if topN <= 0 {
		topN = int(5000 * l.Scale())
	}
	if at.IsZero() {
		at = l.World.Cfg.End
	}
	adRules := listgen.AdBlockingList()
	lists := map[string]*abp.List{}
	for name, h := range l.histories() {
		lists[name] = h.ListAt(at)
	}
	// A no-protection baseline: ad blocking without any anti-adblock list.
	lists["(no anti-adblock list)"] = nil

	res := &CircumventionResult{At: at, Outcomes: map[string]map[browser.VisitOutcome]int{}}
	for name := range lists {
		res.Outcomes[name] = map[browser.VisitOutcome]int{}
	}
	top := map[string]bool{}
	for _, d := range l.World.TopDomains(topN) {
		top[d] = true
	}
	for _, dep := range l.World.Deployments() {
		if !top[dep.SiteDomain] || !dep.ActiveAt(at) {
			continue
		}
		page, ok := l.World.PageAt(dep.SiteDomain, at)
		if !ok {
			continue
		}
		res.Deployed++
		for name, list := range lists {
			outcome := browser.SimulateVisit(browser.VisitConfig{
				AdRules:     adRules,
				AntiAdblock: list,
			}, page, dep)
			res.Outcomes[name][outcome]++
		}
	}
	return res
}

// Render prints the outcome distribution per list.
func (r *CircumventionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Circumvention effectiveness at %s over %d deployed sites\n",
		r.At.Format("2006-01"), r.Deployed)
	outcomes := []browser.VisitOutcome{
		browser.OutcomeCircumvented, browser.OutcomeWallSuppressed,
		browser.OutcomeUndetected, browser.OutcomeWallShown,
	}
	fmt.Fprintf(&b, "%-26s", "list")
	for _, o := range outcomes {
		fmt.Fprintf(&b, " %16s", o)
	}
	b.WriteByte('\n')
	names := append([]string{}, ListNames...)
	names = append(names, "(no anti-adblock list)")
	for _, name := range names {
		counts, ok := r.Outcomes[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-26s", name)
		for _, o := range outcomes {
			fmt.Fprintf(&b, " %16d", counts[o])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ProtectedRate returns the fraction of deployed sites where the list
// spares the user the wall (circumvented, suppressed, or undetected).
func (r *CircumventionResult) ProtectedRate(list string) float64 {
	if r.Deployed == 0 {
		return 0
	}
	c := r.Outcomes[list]
	protected := c[browser.OutcomeCircumvented] +
		c[browser.OutcomeWallSuppressed] + c[browser.OutcomeUndetected]
	return float64(protected) / float64(r.Deployed)
}
