package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adwars/internal/abp"
	"adwars/internal/alexa"
	"adwars/internal/stats"
)

// ---- Figure 1: temporal evolution of filter lists ----

// Fig1Point is one sampled month of a list's rule-count breakdown.
type Fig1Point struct {
	Month  time.Time
	Counts map[abp.Class]int
	Total  int
}

// Fig1Result is the Figure 1 series for one list.
type Fig1Result struct {
	Name   string
	Points []Fig1Point
}

// Fig1 samples a list's rule-class composition monthly over its life —
// the data behind Figures 1(a), 1(b), and 1(c).
func Fig1(h *abp.History, until time.Time) *Fig1Result {
	out := &Fig1Result{Name: h.Name}
	revs := h.Revisions()
	if len(revs) == 0 {
		return out
	}
	for _, m := range stats.MonthsBetween(revs[0].Time, until) {
		rev, ok := h.At(m)
		if !ok {
			continue
		}
		p := Fig1Point{Month: m, Counts: make(map[abp.Class]int)}
		for _, r := range rev.Rules {
			if c := r.Class(); c != abp.ClassUnknown {
				p.Counts[c]++
				p.Total++
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// Render prints the Figure 1 series: one row per month, one column per
// rule class.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — %s: rule counts by class\n", r.Name)
	fmt.Fprintf(&b, "%-8s %7s", "month", "total")
	short := []string{"htmlGen", "htmlDom", "plain", "anchor", "tag", "anch+tag"}
	for _, s := range short {
		fmt.Fprintf(&b, " %8s", s)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %7d", stats.MonthLabel(p.Month), p.Total)
		for _, c := range abp.AllClasses {
			fmt.Fprintf(&b, " %8d", p.Counts[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FinalShares returns the final revision's per-class share of rules.
func (r *Fig1Result) FinalShares() map[abp.Class]float64 {
	if len(r.Points) == 0 {
		return nil
	}
	last := r.Points[len(r.Points)-1]
	out := make(map[abp.Class]float64)
	for c, n := range last.Counts {
		out[c] = float64(n) / float64(last.Total)
	}
	return out
}

// ---- Table 1: rank distribution of listed domains ----

// Table1Result maps each list to its listed-domain counts per Alexa rank
// bucket.
type Table1Result struct {
	Buckets []string
	Counts  map[string]map[string]int // list → bucket → count
}

// Table1 reproduces Table 1: for each list's latest revision, bucket the
// listed domains by rank.
func (l *Lab) Table1() *Table1Result {
	out := &Table1Result{
		Buckets: alexa.RankBuckets,
		Counts:  make(map[string]map[string]int),
	}
	for name, h := range l.histories() {
		list := h.LatestList()
		if list == nil {
			continue
		}
		counts := make(map[string]int)
		for _, d := range list.Domains() {
			counts[alexa.RankBucket(l.World.RankOf(d))]++
		}
		out.Counts[name] = counts
	}
	return out
}

// Render prints Table 1's rows.
func (t *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — listed domains by Alexa rank bucket\n")
	fmt.Fprintf(&b, "%-10s", "Rank")
	for _, n := range ListNames {
		fmt.Fprintf(&b, " %20s", n)
	}
	b.WriteByte('\n')
	for _, bucket := range t.Buckets {
		fmt.Fprintf(&b, "%-10s", bucket)
		for _, n := range ListNames {
			fmt.Fprintf(&b, " %20d", t.Counts[n][bucket])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---- Figure 2: category distribution of listed domains ----

// Fig2Result maps each list to listed-domain percentages per category.
type Fig2Result struct {
	Categories []alexa.Category
	Percent    map[string]map[alexa.Category]float64
}

// Fig2 reproduces Figure 2's categorization of listed domains.
func (l *Lab) Fig2() *Fig2Result {
	out := &Fig2Result{
		Categories: alexa.Categories(),
		Percent:    make(map[string]map[alexa.Category]float64),
	}
	for name, h := range l.histories() {
		list := h.LatestList()
		if list == nil {
			continue
		}
		domains := list.Domains()
		counts := make(map[alexa.Category]int)
		for _, d := range domains {
			counts[l.World.CategoryOf(d)]++
		}
		pct := make(map[alexa.Category]float64)
		for c, n := range counts {
			pct[c] = 100 * float64(n) / float64(len(domains))
		}
		out.Percent[name] = pct
	}
	return out
}

// Render prints Figure 2's bars as rows.
func (f *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — listed-domain categories (%% of list)\n")
	fmt.Fprintf(&b, "%-20s", "Category")
	for _, n := range ListNames {
		fmt.Fprintf(&b, " %20s", n)
	}
	b.WriteByte('\n')
	for _, c := range f.Categories {
		fmt.Fprintf(&b, "%-20s", c)
		for _, n := range ListNames {
			fmt.Fprintf(&b, " %19.1f%%", f.Percent[n][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---- §3.3: exception ratios and domain overlap ----

// OverlapResult carries §3.3's comparative statistics.
type OverlapResult struct {
	AAKDomains, CELDomains int
	Overlap                int
	AAKExceptionRatio      float64
	CELExceptionRatio      float64
	AAKChurnPerRevision    float64
	CELChurnPerRevision    float64
}

// Overlap reproduces the §3.3 comparison: domain counts, the set overlap,
// exception:non-exception ratios, and per-revision churn.
func (l *Lab) Overlap() *OverlapResult {
	aak := l.Lists.AAK.LatestList()
	cel := l.Lists.Combined.LatestList()

	aakDomains := aak.Domains()
	celDomains := cel.Domains()
	inAAK := make(map[string]bool, len(aakDomains))
	for _, d := range aakDomains {
		inAAK[d] = true
	}
	overlap := 0
	for _, d := range celDomains {
		if inAAK[d] {
			overlap++
		}
	}
	ratio := func(list *abp.List) float64 {
		exc, non := list.ExceptionDomainSplit()
		if len(non) == 0 {
			return 0
		}
		return float64(len(exc)) / float64(len(non))
	}
	return &OverlapResult{
		AAKDomains: len(aakDomains), CELDomains: len(celDomains),
		Overlap:             overlap,
		AAKExceptionRatio:   ratio(aak),
		CELExceptionRatio:   ratio(cel),
		AAKChurnPerRevision: l.Lists.AAK.ChurnPerRevision(),
		CELChurnPerRevision: l.Lists.Combined.ChurnPerRevision(),
	}
}

// Render prints the §3.3 statistics.
func (o *OverlapResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3 — comparative list statistics\n")
	fmt.Fprintf(&b, "AAK domains: %d   CEL domains: %d   overlap: %d\n",
		o.AAKDomains, o.CELDomains, o.Overlap)
	fmt.Fprintf(&b, "exception:non-exception — AAK %.1f:1, CEL %.1f:1\n",
		o.AAKExceptionRatio, o.CELExceptionRatio)
	fmt.Fprintf(&b, "rules added/modified per revision — AAK %.1f, CEL %.1f\n",
		o.AAKChurnPerRevision, o.CELChurnPerRevision)
	return b.String()
}

// ---- Figure 3: cross-list addition lag over shared domains ----

// Fig3Result is the CDF of (AAK add time − CEL add time) in days over
// shared domains, plus the first-in-list tallies.
type Fig3Result struct {
	DiffsDays          []float64
	CELFirst, AAKFirst int
	SameDay            int
	CDF                *stats.CDF
}

// Fig3 reproduces Figure 3's lead/lag distribution.
func (l *Lab) Fig3() *Fig3Result {
	aakSeen := l.Lists.AAK.DomainFirstSeen()
	celSeen := l.Lists.Combined.DomainFirstSeen()
	out := &Fig3Result{}
	var shared []string
	for d := range aakSeen {
		if _, ok := celSeen[d]; ok {
			shared = append(shared, d)
		}
	}
	sort.Strings(shared)
	for _, d := range shared {
		diff := aakSeen[d].Sub(celSeen[d]).Hours() / 24
		out.DiffsDays = append(out.DiffsDays, diff)
		switch {
		case diff > 0.5:
			out.CELFirst++
		case diff < -0.5:
			out.AAKFirst++
		default:
			out.SameDay++
		}
	}
	out.CDF = stats.NewCDF(out.DiffsDays)
	return out
}

// Render prints Figure 3's CDF at the paper's x-axis ticks.
func (f *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — cross-list addition lag over %d shared domains\n", len(f.DiffsDays))
	fmt.Fprintf(&b, "first in CEL: %d, first in AAK: %d, same day: %d\n",
		f.CELFirst, f.AAKFirst, f.SameDay)
	fmt.Fprintf(&b, "CDF of (AAK − CEL) days:\n")
	b.WriteString(f.CDF.Render([]float64{-1080, -900, -720, -540, -360, -180, 0, 180, 360, 540, 720, 900, 1080}))
	return b.String()
}
