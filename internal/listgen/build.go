package listgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"adwars/internal/abp"
	"adwars/internal/antiadblock"
)

// vendorRule is one generic rule covering a vendor's detector everywhere.
type vendorRule struct {
	vendor string
	rule   string
	added  time.Time
}

// aakVendorRules are AAK's vendor-generic rules: the mechanism behind its
// broad coverage (§4.2: >98% of AAK-matched websites use third-party
// vendor scripts). Addition dates trail each vendor's market entry by the
// crowdsourcing lag.
var aakVendorRules = []vendorRule{
	{"PageFair", "||pagefair.com^$third-party", time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)},
	{"BlockAdBlock", "||blockadblock.com^$third-party", time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)},
	{"BlockAdBlock", "/blockadblock.js$script", time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC)},
	{"Custom", "/js/site-adblock.js$script", time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)},
	{"Outbrain", "||outbrain.com/utils/adblock/detector.js$script", time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)},
	{"NPTTech", "||npttech.com/advertising.js", time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)},
	{"Optimizely", "||optimizely.com/js/adblock-probe.js$script", time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)},
	{"Histats", "||histats.com/js15_as.js$script", time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)},
	{"IAB", "/js/iab-adblock-check.js$script", time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)},
}

// celBroadRules are the Combined EasyList's broadly-defined rules (§3.3:
// "a few broadly defined filter rules and … many more exception rules").
// They only cover first-party custom detectors, which is why CEL's
// triggered-site counts stay far below AAK's (Figure 6a, §4.3).
var celBroadRules = []vendorRule{
	{"Custom", "/js/site-adblock.js$script", time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)},
	{"Custom", "/adblock-detector*.js$script", time.Date(2012, 9, 1, 0, 0, 0, 0, time.UTC)},
}

// AAKVendorRuleTime returns when AAK's generic rule for a vendor was
// added (zero time when it has none). Figure 7 uses it.
func AAKVendorRuleTime(vendor string) time.Time {
	var first time.Time
	for _, vr := range aakVendorRules {
		if vr.vendor == vendor && (first.IsZero() || vr.added.Before(first)) {
			first = vr.added
		}
	}
	return first
}

// CELBroadRuleTime returns when CEL's broad rule covering a vendor was
// added (zero when none).
func CELBroadRuleTime(vendor string) time.Time {
	var first time.Time
	for _, vr := range celBroadRules {
		if vr.vendor == vendor && (first.IsZero() || vr.added.Before(first)) {
			first = vr.added
		}
	}
	return first
}

// ---- rule text generation ----

// blockRulesAAK renders AAK's high-precision site rules for a deployment:
// mostly HTML hide rules and domain-anchored HTTP rules (Figure 1a's mix).
func blockRulesAAK(d *antiadblock.Deployment, rng *rand.Rand) []string {
	var rules []string
	primary := rng.Float64()
	switch {
	case primary < 0.45: // HTML element rule with domain
		rules = append(rules, d.SiteDomain+"###"+d.NoticeID)
	case primary < 0.70: // HTTP rule with domain anchor
		rules = append(rules, "||"+d.SiteDomain+d.BaitPath)
	case primary < 0.92: // HTTP rule with anchor and tag (Code 10 style)
		rules = append(rules, "||"+vendorHostPath(d)+"$domain="+d.SiteDomain)
	case primary < 0.96: // HTTP rule with domain tag only
		rules = append(rules, d.BaitPath+"$script,domain="+d.SiteDomain)
	case primary < 0.985: // plain HTTP rule
		rules = append(rules, fmt.Sprintf("/abdetect%03d*.js$script", rng.Intn(1000)))
	default: // generic HTML rule (unique id so it cannot over-match)
		rules = append(rules, fmt.Sprintf("###aabgeneric%04d", rng.Intn(10000)))
	}
	// Some domains get a second, complementary rule (~1.3 rules/domain).
	if rng.Float64() < 0.3 {
		if rules[0][0] == '|' || rules[0][0] == '/' {
			rules = append(rules, d.SiteDomain+"###"+d.NoticeID)
		} else {
			rules = append(rules, "||"+d.SiteDomain+d.BaitPath)
		}
	}
	return rules
}

// blockRulesCEL renders the Combined EasyList's site rules: almost all
// HTTP (Figure 1c), anchor-dominated. A share of rules is stale — written
// from old reports against paths the site no longer uses — which keeps
// CEL's on-crawl trigger counts low even for listed domains.
func blockRulesCEL(d *antiadblock.Deployment, rng *rand.Rand) (elRules, awrlRules []string) {
	stale := rng.Float64() < 0.72
	path := d.BaitPath
	if stale {
		path = fmt.Sprintf("/legacy/abcheck%03d.js", rng.Intn(1000))
	}
	r := rng.Float64()
	switch {
	case r < 0.62: // anchor
		elRules = append(elRules, "||"+d.SiteDomain+path)
	case r < 0.86: // anchor + tag
		elRules = append(elRules, "||"+vendorHostPath(d)+"$domain="+d.SiteDomain)
	case r < 0.90: // tag only
		elRules = append(elRules, path+"$script,domain="+d.SiteDomain)
	case r < 0.94: // plain
		elRules = append(elRules, fmt.Sprintf("/abwall%03d*.js$script", rng.Intn(1000)))
	default: // HTML rule → AWRL territory
		awrlRules = append(awrlRules, d.SiteDomain+"###"+d.NoticeID)
	}
	return elRules, awrlRules
}

// vendorHostPath renders "host/path" for a deployment's detector script.
func vendorHostPath(d *antiadblock.Deployment) string {
	v := d.Vendor
	if v.ThirdParty() {
		return v.Domain + v.ScriptPath
	}
	return d.SiteDomain + v.ScriptPath
}

// ---- history assembly ----

// buildHistory turns timestamped rule events into a revision history with
// the given revision times. Events are cumulative (lists rarely delete);
// events after the final revision are dropped, which models AAK's
// abandonment after November 2016.
func buildHistory(name string, events []event, revisions []time.Time) *abp.History {
	sort.SliceStable(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })
	parsed := make([]*abp.Rule, 0, len(events))
	for _, e := range events {
		r, err := abp.Parse(e.rule)
		if err != nil {
			// Generated rules must parse; a failure here is a listgen
			// bug, not input error.
			panic(fmt.Sprintf("listgen: generated rule %q: %v", e.rule, err))
		}
		parsed = append(parsed, r)
	}
	h := abp.NewHistory(name)
	i := 0
	for _, rt := range revisions {
		for i < len(events) && !events[i].t.After(rt) {
			i++
		}
		if i == 0 {
			continue // list not born yet / empty
		}
		h.Append(rt, parsed[:i:i])
	}
	return h
}

// revisionTimes generates update instants from start to end at the given
// cadence, switching to the slow cadence after switchAt (zero = never).
func revisionTimes(start, end time.Time, fast, slow time.Duration, switchAt time.Time) []time.Time {
	var out []time.Time
	t := start
	for !t.After(end) {
		out = append(out, t)
		step := fast
		if !switchAt.IsZero() && !t.Before(switchAt) {
			step = slow
		}
		t = t.Add(step)
	}
	return out
}

// buildAAK assembles the Anti-Adblock Killer List: vendor-generic rules,
// high-precision site rules, exception fixes; revisions every ~4 days
// until November 2015, monthly after (the Figure 1a stair step), with the
// final revision in November 2016.
func (g *generator) buildAAK() *abp.History {
	rng := g.rng("aak-rules")
	var events []event
	for _, vr := range aakVendorRules {
		events = append(events, event{vr.added, vr.rule})
	}
	for _, l := range g.listings {
		if !l.inAAK {
			continue
		}
		t := clampTime(l.aakTime, AAKStart, AAKLastUpdate)
		for _, rule := range blockRulesAAK(l.dep, rng) {
			events = append(events, event{t, rule})
		}
	}
	events = append(events, g.aakExc...)
	revs := revisionTimes(AAKStart, AAKLastUpdate,
		4*24*time.Hour, 30*24*time.Hour,
		time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC))
	return buildHistory("Anti-Adblock Killer", events, revs)
}

// buildEasyListAA assembles the anti-adblock sections of EasyList:
// founder rules from 2011, a few broad rules, HTTP-heavy site rules, and
// the bulk of exception fixes; near-daily updates throughout.
func (g *generator) buildEasyListAA() *abp.History {
	rng := g.rng("el-rules")
	var events []event
	// Founder rules: the 2011 anti-adblock section seeds.
	for i := 0; i < scaled(12, g.scale()); i++ {
		events = append(events, event{
			EasyListAAStart,
			fmt.Sprintf("||earlyblocker%02d.com/detect.js$script", i),
		})
	}
	for _, vr := range celBroadRules {
		events = append(events, event{vr.added, vr.rule})
	}
	var awrlFromListings []event
	for _, l := range g.listings {
		if !l.inCEL {
			continue
		}
		el, awrl := blockRulesCEL(l.dep, rng)
		for _, rule := range el {
			events = append(events, event{l.celTime, rule})
		}
		for _, rule := range awrl {
			if l.celTime.Before(AWRLStart) {
				// Before AWRL existed, warning-hiding rules landed in
				// EasyList itself.
				events = append(events, event{l.celTime, rule})
			} else {
				awrlFromListings = append(awrlFromListings, event{l.celTime, rule})
			}
		}
	}
	g.awrlListingEvents = awrlFromListings
	events = append(events, g.celExc...)
	revs := revisionTimes(EasyListAAStart, HistoryEnd, 2*24*time.Hour, 0, time.Time{})
	return buildHistory("EasyList Anti-Adblock", events, revs)
}

// buildAWRL assembles the Adblock Warning Removal List: warning-hiding
// HTML rules (domain-scoped and generic), a minority of HTTP rules for
// warning-asset CDNs, and the April 2016 French-section batch (the Figure
// 1b spike).
func (g *generator) buildAWRL() *abp.History {
	rng := g.rng("awrl-rules")
	events := append([]event(nil), g.awrlListingEvents...)
	span := HistoryEnd.Sub(AWRLStart)
	// Generic warning selectors accumulate slowly.
	genericSel := []string{
		"adblock-wall", "adb-overlay", "adblock-msg", "abp-notice",
		"blocker-warning", "whitelist-plea", "adblockinfo", "sorrybanner",
	}
	nGeneric := scaled(30, g.scale())
	for i := 0; i < nGeneric; i++ {
		t := AWRLStart.Add(time.Duration(rng.Float64() * float64(span)))
		if rng.Float64() < 0.7 {
			events = append(events, event{t, "##." + genericSel[rng.Intn(len(genericSel))] + fmt.Sprintf("-%d", i)})
		} else {
			events = append(events, event{t, "###" + genericSel[rng.Intn(len(genericSel))] + fmt.Sprintf("%d", i)})
		}
	}
	// Domain-scoped warning hides for deployments AWRL picks up itself.
	// Curators overwhelmingly target notices they can see in the page —
	// static overlays — so those get priority.
	nOwn := scaled(55, g.scale())
	own := 0
	for pass := 0; pass < 2 && own < nOwn; pass++ {
		for _, l := range g.listings {
			if own >= nOwn {
				break
			}
			if !l.inCEL || l.celTime.Before(AWRLStart) {
				continue
			}
			static := g.w.StaticNotice(l.dep.SiteDomain)
			if (pass == 0) != static {
				continue // pass 0: static notices; pass 1: the rest
			}
			events = append(events, event{l.celTime, l.dep.SiteDomain + "###" + l.dep.NoticeID})
			own++
		}
	}
	// HTTP rules for warning-asset hosts.
	nHTTP := scaled(35, g.scale())
	for i := 0; i < nHTTP; i++ {
		t := AWRLStart.Add(time.Duration(rng.Float64() * float64(span)))
		switch rng.Intn(4) {
		case 0:
			events = append(events, event{t, fmt.Sprintf("||abmsgcdn%02d.com^", i)})
		case 1:
			events = append(events, event{t, fmt.Sprintf("||abmsgcdn%02d.com^$script,domain=site%02d.com", i, i)})
		case 2:
			events = append(events, event{t, fmt.Sprintf("/adblock-warning%02d*.js", i)})
		default:
			events = append(events, event{t, fmt.Sprintf("@@||warningfix%02d.com/notice.js", i)})
		}
	}
	// The April 2016 French section.
	french := time.Date(2016, 4, 10, 0, 0, 0, 0, time.UTC)
	for _, d := range g.frenchDomains {
		events = append(events, event{french, d + "###message-bloqueur"})
	}
	revs := revisionTimes(AWRLStart, HistoryEnd, 5*24*time.Hour, 0, time.Time{})
	return buildHistory("Adblock Warning Removal List", events, revs)
}
