// Package listgen derives the anti-adblock filter list histories from the
// world's ground-truth deployment timeline through an explicit
// crowdsourced-curation model (see DESIGN.md, substitutions). It generates
// the Anti-Adblock Killer List, the anti-adblock sections of EasyList, and
// the Adblock Warning Removal List, with the observable properties the
// paper measures:
//
//   - rule-type mixes and growth trajectories (Figure 1),
//   - listed-domain counts per Alexa rank bucket (Table 1) and category
//     (Figure 2),
//   - exception/non-exception domain ratios (§3.3: CEL ≈ 4:1, AAK ≈ 1:1),
//   - an overlap of ~282 domains between the two lists, with the Combined
//     EasyList usually adding a shared domain first (Figure 3),
//   - update cadences (EasyList near-daily, AAK monthly after Nov 2015,
//     with AAK abandoned after Nov 2016),
//   - and the curation-delay structure behind Figure 7: broad/vendor rules
//     that predate a site's adoption versus site-specific rules added only
//     after crowdsourced reports.
package listgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"adwars/internal/abp"
	"adwars/internal/antiadblock"
	"adwars/internal/simworld"
)

// Dates of record for the three lists (§3.2 of the paper).
var (
	// AAKStart is when "reek" created the Anti-Adblock Killer List.
	AAKStart = time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)
	// AAKLastUpdate is the list's final revision (the authors stopped in
	// November 2016).
	AAKLastUpdate = time.Date(2016, 11, 15, 0, 0, 0, 0, time.UTC)
	// EasyListAAStart is when EasyList's anti-adblock sections appeared.
	EasyListAAStart = time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC)
	// AWRLStart is when the Adblock Warning Removal List was created.
	AWRLStart = time.Date(2013, 12, 1, 0, 0, 0, 0, time.UTC)
	// HistoryEnd is how far histories extend (past the live crawl).
	HistoryEnd = time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC)
)

// event is one rule joining a list at a desired time.
type event struct {
	t    time.Time
	rule string
}

// Lists bundles the generated histories.
type Lists struct {
	// AAK is the Anti-Adblock Killer List.
	AAK *abp.History
	// EasyListAA is the anti-adblock sections of EasyList.
	EasyListAA *abp.History
	// AWRL is the Adblock Warning Removal List.
	AWRL *abp.History
	// Combined is AWRL + EasyListAA, the paper's "Combined EasyList".
	Combined *abp.History
}

// Generate derives all filter list histories from the world.
func Generate(w *simworld.World, seed int64) *Lists {
	g := &generator{w: w, seed: seed}
	g.assignListings()
	aak := g.buildAAK()
	el := g.buildEasyListAA()
	awrl := g.buildAWRL()
	return &Lists{
		AAK:        aak,
		EasyListAA: el,
		AWRL:       awrl,
		Combined:   abp.MergeHistories("Combined EasyList", el, awrl),
	}
}

type listing struct {
	dep     *antiadblock.Deployment
	inAAK   bool
	inCEL   bool
	aakTime time.Time // desired site-rule time in AAK
	celTime time.Time // desired site-rule time in CEL
}

type generator struct {
	w    *simworld.World
	seed int64

	listings []*listing
	// exception domains per list, with desired add times.
	aakExc, celExc []event

	// frenchDomains back the AWRL French-section spike of April 2016.
	frenchDomains []string

	// awrlListingEvents are warning-hide rules produced while building
	// the EasyList sections that belong to AWRL (set by buildEasyListAA,
	// consumed by buildAWRL — Generate calls them in that order).
	awrlListingEvents []event
}

func (g *generator) rng(salt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", salt, g.seed)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// scale shrinks the paper's absolute quotas for scaled-down worlds.
func (g *generator) scale() float64 {
	return float64(g.w.Cfg.UniverseSize) / 100_000
}

// bucketOf maps a deployment to its Table 1 rank bucket index.
func bucketIndex(rank int) int {
	switch {
	case rank >= 1 && rank <= 5_000:
		return 0
	case rank <= 10_000:
		return 1
	case rank <= 100_000:
		return 2
	case rank <= 1_000_000:
		return 3
	default:
		return 4
	}
}

// Table 1 block-rule domain quotas per bucket. Roughly half of AAK's
// listed domains are non-exception (1:1 ratio) and a fifth of CEL's (4:1),
// distributed like the full Table 1 columns.
var (
	aakBlockQuota = [5]int{56, 25, 140, 167, 320}
	celBlockQuota = [5]int{60, 14, 62, 72, 106}
	// Overlap between the lists' block-listed domains per bucket; with
	// exception overlap this lands near the paper's 282 shared domains.
	overlapQuota = [5]int{14, 6, 30, 42, 50}
	// Exception-domain quotas (false-positive fixes on mostly benign
	// sites).
	aakExcQuota = [5]int{56, 24, 140, 167, 320}
	celExcQuota = [5]int{64, 55, 250, 287, 424}
	// Exception overlap complements block overlap toward ~282.
	excOverlapQuota = [5]int{14, 6, 30, 40, 50}
)

// assignListings decides which deployments each list targets and when.
func (g *generator) assignListings() {
	rng := g.rng("assign")
	scale := g.scale()

	// Group deployments by bucket, ordered by a deterministic hash so
	// selection is stable.
	byBucket := make([][]*antiadblock.Deployment, 5)
	for _, d := range g.w.Deployments() {
		b := bucketIndex(g.w.RankOf(d.SiteDomain))
		byBucket[b] = append(byBucket[b], d)
	}
	for b := range byBucket {
		bucket := byBucket[b]
		rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })

		nOverlap := scaled(overlapQuota[b], scale)
		nAAK := scaled(aakBlockQuota[b], scale)
		nCEL := scaled(celBlockQuota[b], scale)
		for i, d := range bucket {
			l := &listing{dep: d}
			switch {
			case i < nOverlap:
				l.inAAK, l.inCEL = true, true
			case i < nOverlap+(nAAK-nOverlap):
				l.inAAK = true
			case i < nOverlap+(nAAK-nOverlap)+(nCEL-nOverlap):
				l.inCEL = true
			default:
				continue
			}
			g.timings(l, rng)
			g.listings = append(g.listings, l)
		}
	}
	sort.Slice(g.listings, func(i, j int) bool {
		return g.listings[i].dep.SiteDomain < g.listings[j].dep.SiteDomain
	})

	g.assignExceptions(rng)
	g.assignFrench(rng)
}

func scaled(quota int, scale float64) int {
	n := int(float64(quota)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// timings draws the crowdsourced report delays. The Combined EasyList is
// usually faster (bigger user base, §3.3); roughly a third of shared
// domains reach AAK first (Figure 3's 92 of 282).
func (g *generator) timings(l *listing, rng *rand.Rand) {
	start := l.dep.Start
	celFast := rng.Float64() < 0.67
	celDelay := time.Duration(rng.ExpFloat64()*float64(55*24)) * time.Hour
	aakDelay := time.Duration(rng.ExpFloat64()*float64(260*24)) * time.Hour
	if !celFast {
		celDelay = time.Duration(rng.ExpFloat64()*float64(320*24)) * time.Hour
		aakDelay = time.Duration(rng.ExpFloat64()*float64(60*24)) * time.Hour
	}
	l.celTime = clampTime(start.Add(celDelay), EasyListAAStart, HistoryEnd)
	l.aakTime = clampTime(start.Add(aakDelay), AAKStart, HistoryEnd)
}

func clampTime(t, lo, hi time.Time) time.Time {
	if t.Before(lo) {
		return lo
	}
	if t.After(hi) {
		return hi
	}
	return t
}

// assignExceptions picks mostly-benign domains that receive exception
// rules (the numerama.com pattern: a broad rule breaks a site, the fix is
// an exception). Universe buckets draw real non-deployed domains; deeper
// buckets use fabricated domains, as the paper's lists are full of sites
// outside the top-100K.
func (g *generator) assignExceptions(rng *rand.Rand) {
	scale := g.scale()
	pool := g.w.NonDeployedDomains(g.w.Cfg.UniverseSize)
	poolIdx := 0
	nextReal := func(bucket int) string {
		for poolIdx < len(pool) {
			d := pool[poolIdx]
			poolIdx++
			if bucketIndex(g.w.RankOf(d)) == bucket {
				return d
			}
		}
		return ""
	}
	fabricated := 0
	nextDomain := func(bucket int) string {
		if bucket <= 2 {
			if d := nextReal(bucket); d != "" {
				return d
			}
		}
		fabricated++
		return fmt.Sprintf("fpfix%05d.com", fabricated)
	}
	addTime := func(listStart time.Time) time.Time {
		// Exception fixes follow broad-rule breakage reports: spread
		// over the list's life, weighted early (breakage surfaces fast).
		span := HistoryEnd.Sub(listStart)
		frac := rng.Float64()
		frac = frac * frac // bias early
		return listStart.Add(time.Duration(frac * float64(span)))
	}
	for b := 0; b < 5; b++ {
		nShared := scaled(excOverlapQuota[b], scale)
		nAAK := scaled(aakExcQuota[b], scale)
		nCEL := scaled(celExcQuota[b], scale)
		for i := 0; i < nShared; i++ {
			d := nextDomain(b)
			t := addTime(EasyListAAStart)
			g.celExc = append(g.celExc, event{t, excRule(d, rng, celExcHTMLShare)})
			g.aakExc = append(g.aakExc, event{clampTime(t, AAKStart, HistoryEnd), excRule(d, rng, aakExcHTMLShare)})
		}
		for i := 0; i < nAAK-nShared; i++ {
			g.aakExc = append(g.aakExc, event{addTime(AAKStart), excRule(nextDomain(b), rng, aakExcHTMLShare)})
		}
		for i := 0; i < nCEL-nShared; i++ {
			g.celExc = append(g.celExc, event{addTime(EasyListAAStart), excRule(nextDomain(b), rng, celExcHTMLShare)})
		}
	}
}

// Exception-rule HTML shares: EasyList's anti-adblock sections are almost
// entirely HTTP rules (Figure 1c: 3.7% HTML), while AAK mixes in far more
// element rules (Figure 1a: 41.5% HTML).
const (
	celExcHTMLShare = 0.04
	aakExcHTMLShare = 0.38
)

// excRule renders an exception rule for a domain.
func excRule(domain string, rng *rand.Rand, htmlProb float64) string {
	if rng.Float64() < htmlProb {
		return domain + "#@##adsbox"
	}
	switch rng.Intn(3) {
	case 0:
		return "@@||" + domain + "/ads.js"
	case 1:
		return "@@||" + domain + "^$script"
	default:
		return "@@||" + domain + "/js/advert*.js$script"
	}
}

// assignFrench fabricates the April 2016 French-section batch of the
// Adblock Warning Removal List (the Figure 1(b) spike).
func (g *generator) assignFrench(rng *rand.Rand) {
	n := scaled(40, g.scale())
	for i := 0; i < n; i++ {
		g.frenchDomains = append(g.frenchDomains, fmt.Sprintf("lesite%03d.fr", i))
	}
}
