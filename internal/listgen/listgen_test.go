package listgen

import (
	"strings"
	"sync"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/simworld"
)

var (
	once      sync.Once
	testWorld *simworld.World
	testLists *Lists
)

// lists builds one shared 1/20-scale world + lists for all tests.
func lists(t *testing.T) (*simworld.World, *Lists) {
	t.Helper()
	once.Do(func() {
		testWorld = simworld.New(simworld.Scaled(11, 20))
		testLists = Generate(testWorld, 11)
	})
	return testWorld, testLists
}

func latest(t *testing.T, h *abp.History) *abp.List {
	t.Helper()
	rev, ok := h.Latest()
	if !ok {
		t.Fatalf("history %s is empty", h.Name)
	}
	return abp.NewList(h.Name, rev.Rules)
}

func TestGenerateDeterministic(t *testing.T) {
	w := simworld.New(simworld.Scaled(7, 50))
	l1 := Generate(w, 7)
	l2 := Generate(w, 7)
	r1, _ := l1.AAK.Latest()
	r2, _ := l2.AAK.Latest()
	if len(r1.Rules) != len(r2.Rules) {
		t.Fatalf("AAK rules %d vs %d", len(r1.Rules), len(r2.Rules))
	}
	for i := range r1.Rules {
		if r1.Rules[i].Raw != r2.Rules[i].Raw {
			t.Fatalf("rule %d differs", i)
		}
	}
}

func TestAAKRuleMix(t *testing.T) {
	_, ls := lists(t)
	l := latest(t, ls.AAK)
	counts := l.CountByClass()
	total := l.Len()
	if total < 30 {
		t.Fatalf("AAK too small: %d rules", total)
	}
	html := counts[abp.ClassHTMLWithDomain] + counts[abp.ClassHTMLNoDomain]
	frac := float64(html) / float64(total)
	// Paper: 41.5% HTML rules.
	if frac < 0.25 || frac > 0.55 {
		t.Errorf("AAK HTML share = %.2f, want ≈ 0.41", frac)
	}
	if counts[abp.ClassHTTPAnchor] == 0 || counts[abp.ClassHTTPAnchorTag] == 0 {
		t.Error("AAK missing anchor / anchor+tag rules")
	}
}

func TestEasyListAARuleMix(t *testing.T) {
	_, ls := lists(t)
	l := latest(t, ls.EasyListAA)
	counts := l.CountByClass()
	total := l.Len()
	html := counts[abp.ClassHTMLWithDomain] + counts[abp.ClassHTMLNoDomain]
	frac := float64(html) / float64(total)
	// Paper: 3.7% HTML rules in EasyList's anti-adblock sections.
	if frac > 0.12 {
		t.Errorf("EasyList-AA HTML share = %.2f, want ≈ 0.04", frac)
	}
	anchor := counts[abp.ClassHTTPAnchor]
	if float64(anchor)/float64(total) < 0.4 {
		t.Errorf("EasyList-AA anchor share = %.2f, want dominant (0.646 in paper)",
			float64(anchor)/float64(total))
	}
}

func TestAWRLRuleMix(t *testing.T) {
	_, ls := lists(t)
	l := latest(t, ls.AWRL)
	counts := l.CountByClass()
	total := l.Len()
	html := counts[abp.ClassHTMLWithDomain] + counts[abp.ClassHTMLNoDomain]
	frac := float64(html) / float64(total)
	// Paper: 67.7% HTML rules.
	if frac < 0.45 {
		t.Errorf("AWRL HTML share = %.2f, want ≈ 0.68", frac)
	}
	if counts[abp.ClassHTMLNoDomain] == 0 {
		t.Error("AWRL should carry generic (domain-less) HTML rules")
	}
}

func TestExceptionRatios(t *testing.T) {
	_, ls := lists(t)
	aak := latest(t, ls.AAK)
	cel := latest(t, ls.Combined)
	aakExc, aakNon := aak.ExceptionDomainSplit()
	celExc, celNon := cel.ExceptionDomainSplit()
	aakRatio := float64(len(aakExc)) / float64(len(aakNon))
	celRatio := float64(len(celExc)) / float64(len(celNon))
	// §3.3: CEL ≈ 4:1 exception:non-exception, AAK ≈ 1:1.
	if aakRatio < 0.5 || aakRatio > 1.8 {
		t.Errorf("AAK exception ratio = %.2f, want ≈ 1", aakRatio)
	}
	if celRatio < 2.2 || celRatio > 7 {
		t.Errorf("CEL exception ratio = %.2f, want ≈ 4", celRatio)
	}
	if celRatio <= aakRatio {
		t.Error("CEL must be more exception-heavy than AAK")
	}
}

func TestDomainOverlap(t *testing.T) {
	_, ls := lists(t)
	aakDomains := latest(t, ls.AAK).Domains()
	celDomains := latest(t, ls.Combined).Domains()
	inAAK := map[string]bool{}
	for _, d := range aakDomains {
		inAAK[d] = true
	}
	overlap := 0
	for _, d := range celDomains {
		if inAAK[d] {
			overlap++
		}
	}
	// Paper (full scale): 1,415 and 1,394 domains, 282 shared. At 1/20
	// scale expect ≈ 70, 70, 14 — plus vendor-domain noise.
	if overlap < 5 || overlap > 40 {
		t.Errorf("overlap = %d, want ≈ 14 at this scale", overlap)
	}
	small := float64(overlap)
	if small/float64(len(aakDomains)) > 0.6 {
		t.Errorf("overlap should be the minority of listed domains (%d of %d)",
			overlap, len(aakDomains))
	}
}

func TestGrowthMonotone(t *testing.T) {
	_, ls := lists(t)
	for _, h := range []*abp.History{ls.AAK, ls.EasyListAA, ls.AWRL, ls.Combined} {
		series := h.ClassSeries()
		prev := 0
		for _, p := range series {
			if p.Total < prev {
				t.Errorf("%s shrinks at %s: %d → %d", h.Name,
					p.Time.Format("2006-01"), prev, p.Total)
				break
			}
			prev = p.Total
		}
		if prev == 0 {
			t.Errorf("%s ends empty", h.Name)
		}
	}
}

func TestAAKAbandonedNov2016(t *testing.T) {
	_, ls := lists(t)
	last, _ := ls.AAK.Latest()
	if last.Time.After(AAKLastUpdate) {
		t.Fatalf("AAK updated after abandonment: %s", last.Time)
	}
	// The Combined EasyList keeps updating into 2017.
	lastCEL, _ := ls.Combined.Latest()
	if lastCEL.Time.Year() != 2017 {
		t.Fatalf("CEL last revision %s, want 2017", lastCEL.Time)
	}
}

func TestAAKCadenceSlowsAfterNov2015(t *testing.T) {
	_, ls := lists(t)
	revs := ls.AAK.Revisions()
	cut := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	var fast, slow []time.Time
	for _, r := range revs {
		if r.Time.Before(cut) {
			fast = append(fast, r.Time)
		} else {
			slow = append(slow, r.Time)
		}
	}
	if len(fast) < 2 || len(slow) < 2 {
		t.Fatal("not enough revisions on both sides of the cadence switch")
	}
	fastGap := fast[1].Sub(fast[0])
	slowGap := slow[1].Sub(slow[0])
	if slowGap <= fastGap*3 {
		t.Errorf("cadence did not slow: %v → %v", fastGap, slowGap)
	}
}

func TestAWRLFrenchSpike(t *testing.T) {
	_, ls := lists(t)
	before := ls.AWRL.ListAt(time.Date(2016, 3, 31, 0, 0, 0, 0, time.UTC))
	after := ls.AWRL.ListAt(time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC))
	if before == nil || after == nil {
		t.Fatal("AWRL history gap around April 2016")
	}
	jump := after.Len() - before.Len()
	if jump < 2 {
		t.Errorf("April 2016 spike = %d new rules, want a visible batch", jump)
	}
}

func TestCombinedFirstMoreOftenThanAAK(t *testing.T) {
	w, ls := lists(t)
	_ = w
	aakFirst, celFirst := 0, 0
	aakSeen := ls.AAK.DomainFirstSeen()
	celSeen := ls.Combined.DomainFirstSeen()
	for d, at := range aakSeen {
		ct, ok := celSeen[d]
		if !ok {
			continue
		}
		switch {
		case ct.Before(at):
			celFirst++
		case at.Before(ct):
			aakFirst++
		}
	}
	if celFirst+aakFirst < 5 {
		t.Skip("too few shared domains at this scale")
	}
	// Figure 3: 185 of 282 appear first in CEL.
	if celFirst <= aakFirst {
		t.Errorf("CEL first %d vs AAK first %d; CEL should lead", celFirst, aakFirst)
	}
}

func TestVendorRuleLookups(t *testing.T) {
	if AAKVendorRuleTime("PageFair").IsZero() {
		t.Error("AAK PageFair rule time missing")
	}
	if !AAKVendorRuleTime("NoSuchVendor").IsZero() {
		t.Error("unknown vendor should have zero time")
	}
	if CELBroadRuleTime("Custom").IsZero() {
		t.Error("CEL Custom broad rule time missing")
	}
	if !CELBroadRuleTime("PageFair").IsZero() {
		t.Error("CEL has no PageFair broad rule")
	}
}

func TestGeneratedRulesAllParse(t *testing.T) {
	_, ls := lists(t)
	for _, h := range []*abp.History{ls.AAK, ls.EasyListAA, ls.AWRL} {
		rev, _ := h.Latest()
		for _, r := range rev.Rules {
			if r.Kind == abp.KindInvalid || r.Kind == abp.KindComment {
				t.Fatalf("%s contains unparsed rule %q", h.Name, r.Raw)
			}
		}
	}
}

func TestHistoriesReplayable(t *testing.T) {
	_, ls := lists(t)
	// ListAt at several instants must compile and grow over time.
	prev := 0
	for _, m := range []time.Time{
		time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC),
	} {
		l := ls.Combined.ListAt(m)
		if l == nil {
			t.Fatalf("CEL missing at %s", m)
		}
		if l.Len() < prev {
			t.Fatalf("CEL shrank by %s", m)
		}
		prev = l.Len()
	}
}

func TestRenderListRoundTrip(t *testing.T) {
	_, ls := lists(t)
	for _, h := range []*abp.History{ls.AAK, ls.EasyListAA, ls.AWRL} {
		text := RenderLatest(h)
		if text == "" {
			t.Fatalf("%s rendered empty", h.Name)
		}
		rules, errs := abp.ParseList(text)
		if len(errs) != 0 {
			t.Fatalf("%s round trip errors: %v", h.Name, errs[0])
		}
		rev, _ := h.Latest()
		if len(rules) != len(rev.Rules) {
			t.Fatalf("%s round trip: %d rules, want %d", h.Name, len(rules), len(rev.Rules))
		}
		// The compiled round-tripped list must behave identically on a
		// probe request.
		orig := abp.NewList(h.Name, rev.Rules)
		back := abp.NewList(h.Name, rules)
		q := abp.Request{URL: "http://pagefair.com/x.js", Type: abp.TypeScript, PageDomain: "p.com"}
		d1, _ := orig.MatchRequest(q)
		d2, _ := back.MatchRequest(q)
		if d1 != d2 {
			t.Fatalf("%s round trip changed matching: %v vs %v", h.Name, d1, d2)
		}
	}
}

func TestRenderAt(t *testing.T) {
	_, ls := lists(t)
	if RenderAt(ls.AAK, day(2013, 1, 1)) != "" {
		t.Error("AAK should not render before it exists")
	}
	text := RenderAt(ls.AAK, day(2015, 6, 1))
	if !strings.Contains(text, "[Adblock Plus 2.0]") || !strings.Contains(text, "! Title:") {
		t.Error("header missing")
	}
	var empty abp.History
	if RenderLatest(&empty) != "" {
		t.Error("empty history should render empty")
	}
}

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}
