package listgen

import (
	"fmt"
	"strings"
	"time"

	"adwars/internal/abp"
)

// RenderList serializes a list revision in the standard Adblock Plus
// filter list text format, with the header block real lists carry. The
// output parses back through abp.ParseList (round-trip tested), so the
// generated lists can be consumed by any ABP-compatible engine.
func RenderList(name string, rev abp.Revision) string {
	var b strings.Builder
	b.WriteString("[Adblock Plus 2.0]\n")
	fmt.Fprintf(&b, "! Title: %s\n", name)
	fmt.Fprintf(&b, "! Version: %s\n", rev.Time.Format("200601021504"))
	fmt.Fprintf(&b, "! Last modified: %s\n", rev.Time.Format("02 Jan 2006 15:04 MST"))
	b.WriteString("! Expires: 4 days (update frequency)\n")
	b.WriteString("! Homepage: https://github.com/example/anti-adblock-killer\n")
	b.WriteString("!\n")

	// Group rules by kind with section comments, like the curated lists.
	sections := []struct {
		title string
		keep  func(*abp.Rule) bool
	}{
		{"General element hiding rules", func(r *abp.Rule) bool {
			return r.Kind == abp.KindElemHide && !r.HasDomainTag()
		}},
		{"Site-specific element hiding rules", func(r *abp.Rule) bool {
			return r.Kind == abp.KindElemHide && r.HasDomainTag()
		}},
		{"Blocking rules", func(r *abp.Rule) bool {
			return r.Kind == abp.KindHTTPBlock
		}},
		{"Exception rules", func(r *abp.Rule) bool {
			return r.Kind == abp.KindHTTPException || r.Kind == abp.KindElemHideException
		}},
	}
	for _, s := range sections {
		var lines []string
		for _, r := range rev.Rules {
			if s.keep(r) {
				lines = append(lines, r.Raw)
			}
		}
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(&b, "! *** %s ***\n", s.title)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderLatest serializes the most recent revision of a history, or ""
// for empty histories.
func RenderLatest(h *abp.History) string {
	rev, ok := h.Latest()
	if !ok {
		return ""
	}
	return RenderList(h.Name, rev)
}

// RenderAt serializes the revision in force at time t, or "" when the
// list did not exist yet.
func RenderAt(h *abp.History, t time.Time) string {
	rev, ok := h.At(t)
	if !ok {
		return ""
	}
	return RenderList(h.Name, rev)
}

// adBlockingRules is the general ad-blocking list standing in for
// EasyList's main sections: it blocks the bait request paths and hides the
// ad-like bait element classes anti-adblockers plant (§3.1). These are the
// rules whose effect the detectors observe.
var adBlockingRules = []string{
	"/ads.js?",
	"/ads.js|",
	"/advertising.js",
	"/adsbygoogle.js",
	"/js/ads.js",
	"/assets/ad-loader.js",
	"/static/showads.js",
	"/banner/ads.js",
	"##.ad-banner",
	"##.pub_300x250",
	"##.textads",
	"##.ad-placement",
	"##.adsbox",
	"##.banner_ad",
	"##.sponsor-box",
	"##.ad-unit",
	"##.adzone",
	"##.square-ad",
}

// AdBlockingList compiles the stand-in for EasyList's general ad-blocking
// sections, used by the circumvention simulation (browser.SimulateVisit).
func AdBlockingList() *abp.List {
	list, errs := abp.ParseAndBuild("EasyList (ads)", strings.Join(adBlockingRules, "\n"))
	if len(errs) != 0 {
		panic(fmt.Sprintf("listgen: ad rules must parse: %v", errs[0]))
	}
	return list
}
