package jsast

import (
	"testing"
	"testing/quick"
)

func toks(t *testing.T, src string) []Token {
	t.Helper()
	ts, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return ts
}

func TestTokenizeIdentifiersAndKeywords(t *testing.T) {
	ts := toks(t, "var adblockStatus = active")
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "var"}, {TokIdent, "adblockStatus"},
		{TokPunct, "="}, {TokIdent, "active"},
	}
	if len(ts) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(ts), len(want), ts)
	}
	for i, w := range want {
		if ts[i].Kind != w.kind || ts[i].Text != w.text {
			t.Errorf("token %d = %v, want %v %q", i, ts[i], w.kind, w.text)
		}
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	ts := toks(t, `'a\'b' "c\n" "\x41" "B"`)
	want := []string{"a'b", "c\n", "A", "B"}
	for i, w := range want {
		if ts[i].Kind != TokString || ts[i].Text != w {
			t.Errorf("string %d = %q, want %q", i, ts[i].Text, w)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []string{"0", "42", "3.14", ".5", "1e6", "2.5e-3", "0xFF"}
	for _, c := range cases {
		ts := toks(t, c)
		if len(ts) != 1 || ts[0].Kind != TokNumber || ts[0].Text != c {
			t.Errorf("Tokenize(%q) = %v", c, ts)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	ts := toks(t, "a // line\n/* block\ncomment */ b")
	if len(ts) != 2 || ts[0].Text != "a" || ts[1].Text != "b" {
		t.Fatalf("tokens = %v", ts)
	}
	if !ts[1].NewlineBefore {
		t.Error("newline inside comments should set NewlineBefore")
	}
}

func TestTokenizeRegexVsDivision(t *testing.T) {
	ts := toks(t, "x = /ab[/]c/g; y = a / b / c")
	found := 0
	for _, tok := range ts {
		if tok.Kind == TokRegex {
			found++
			if tok.Text != "/ab[/]c/g" {
				t.Errorf("regex text = %q", tok.Text)
			}
		}
	}
	if found != 1 {
		t.Fatalf("found %d regex literals, want 1", found)
	}
}

func TestTokenizeRegexAfterParen(t *testing.T) {
	ts := toks(t, "if (/adblock/.test(s)) {}")
	hasRegex := false
	for _, tok := range ts {
		if tok.Kind == TokRegex && tok.Text == "/adblock/" {
			hasRegex = true
		}
	}
	if !hasRegex {
		t.Fatal("regex after '(' not recognized")
	}
}

func TestTokenizeMaximalMunch(t *testing.T) {
	ts := toks(t, "a===b !== c >>> d >>>= e")
	var puncts []string
	for _, tok := range ts {
		if tok.Kind == TokPunct {
			puncts = append(puncts, tok.Text)
		}
	}
	want := []string{"===", "!==", ">>>", ">>>="}
	for i, w := range want {
		if puncts[i] != w {
			t.Errorf("punct %d = %q, want %q", i, puncts[i], w)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	bad := []string{`"unterminated`, "/* open", "'nl\n'", "@", "1e"}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	ts := toks(t, "a\n  b")
	if ts[0].Line != 1 || ts[0].Col != 1 {
		t.Errorf("a at %d:%d", ts[0].Line, ts[0].Col)
	}
	if ts[1].Line != 2 || ts[1].Col != 3 {
		t.Errorf("b at %d:%d", ts[1].Line, ts[1].Col)
	}
	if !ts[1].NewlineBefore {
		t.Error("b should have NewlineBefore")
	}
}

func TestTokenizeNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Tokenize(src) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("typeof") || !IsKeyword("var") {
		t.Error("typeof/var are keywords")
	}
	if IsKeyword("offsetHeight") {
		t.Error("offsetHeight is not a JS keyword")
	}
}
