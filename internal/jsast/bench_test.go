package jsast

import "testing"

// BenchmarkTokenize measures lexing of the paper's Code 5 snippet.
func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(code5)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Tokenize(code5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures full parsing of Code 5.
func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(code5)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(code5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseAndUnpack measures the ablation cost of the unpacking
// pass on an eval-packed payload.
func BenchmarkParseAndUnpack(b *testing.B) {
	src := `eval(` + quoteJS(code4) + `);`
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, n, err := ParseAndUnpack(src)
		if err != nil {
			b.Fatal(err)
		}
		if n != 1 {
			b.Fatal("payload not unpacked")
		}
	}
}

// BenchmarkInspect measures AST traversal.
func BenchmarkInspect(b *testing.B) {
	prog, err := Parse(code4 + code5 + code8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		Inspect(prog, func(Node) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty walk")
		}
	}
}
