package jsast

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return prog
}

// Code 4 of the paper: the businessinsider.com HTTP bait.
const code4 = `
var script = document.createElement("script");
script.setAttribute("async", true);
script.setAttribute("src", "//www.npttech.com/advertising.js");
script.setAttribute("onerror", "setAdblockerCookie(true);");
script.setAttribute("onload", "setAdblockerCookie(false);");
document.getElementsByTagName("head")[0].appendChild(script);

var setAdblockerCookie = function(adblocker) {
  var d = new Date();
  d.setTime(d.getTime() + 60 * 60 * 24 * 30 * 1000);
  document.cookie = "__adblocker=" + (adblocker ? "true" : "false") +
    "; expires=" + d.toUTCString() + "; path=/";
};
`

// Code 5 of the paper: BlockAdBlock bait creation and checking.
const code5 = `
BlockAdBlock.prototype._creatBait = function() {
  var bait = document.createElement('div');
  bait.setAttribute('class', this._options.baitClass);
  bait.setAttribute('style', this._options.baitStyle);
  this._var.bait = window.document.body.appendChild(bait);
  this._var.bait.offsetParent;
  this._var.bait.offsetHeight;
  this._var.bait.offsetLeft;
  this._var.bait.offsetTop;
  this._var.bait.offsetWidth;
  this._var.bait.clientHeight;
  this._var.bait.clientWidth;
  if (this._options.debug === true) {
    this._log('_creatBait', 'Bait has been created');
  }
};
BlockAdBlock.prototype._checkBait = function(loop) {
  var detected = false;
  if (window.document.body.getAttribute('abp') !== null
      || this._var.bait.offsetParent === null
      || this._var.bait.offsetHeight == 0
      || this._var.bait.offsetLeft == 0
      || this._var.bait.offsetTop == 0
      || this._var.bait.offsetWidth == 0
      || this._var.bait.clientHeight == 0
      || this._var.bait.clientWidth == 0) {
    detected = true;
  }
};
`

// Code 8 of the paper: the numerama.com canRunAds check.
const code8 = `
canRunAds = true;
var adblockStatus = 'inactive';
if (window.canRunAds === undefined) {
  adblockStatus = 'active';
}
`

func TestParsePaperCode4(t *testing.T) {
	prog := parse(t, code4)
	if len(prog.Body) != 7 {
		t.Fatalf("top-level statements = %d, want 7", len(prog.Body))
	}
	// Last statement declares setAdblockerCookie as a function expression.
	vd, ok := prog.Body[6].(*VarDecl)
	if !ok {
		t.Fatalf("statement 7 = %T, want *VarDecl", prog.Body[6])
	}
	if vd.Decls[0].Name != "setAdblockerCookie" {
		t.Fatalf("declarator = %q", vd.Decls[0].Name)
	}
	if _, ok := vd.Decls[0].Init.(*FunctionExpr); !ok {
		t.Fatalf("init = %T, want *FunctionExpr", vd.Decls[0].Init)
	}
}

func TestParsePaperCode5(t *testing.T) {
	prog := parse(t, code5)
	// Collect member property names; the bait CSS probes must be present.
	props := map[string]bool{}
	Inspect(prog, func(n Node) bool {
		if m, ok := n.(*Member); ok && !m.Computed {
			if id, ok := m.Prop.(*Ident); ok {
				props[id.Name] = true
			}
		}
		return true
	})
	for _, want := range []string{"offsetHeight", "offsetTop", "offsetWidth",
		"clientHeight", "clientWidth", "_creatBait", "_checkBait", "prototype"} {
		if !props[want] {
			t.Errorf("member property %q not found", want)
		}
	}
}

func TestParsePaperCode8(t *testing.T) {
	prog := parse(t, code8)
	ifs := 0
	Inspect(prog, func(n Node) bool {
		if _, ok := n.(*If); ok {
			ifs++
		}
		return true
	})
	if ifs != 1 {
		t.Fatalf("if statements = %d, want 1", ifs)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
for (var i = 0; i < 10; i++) { x += i; }
for (k in obj) { delete obj[k]; }
while (running) { step(); }
do { tick(); } while (more);
switch (v) { case 1: a(); break; case 2: b(); break; default: c(); }
try { risky(); } catch (e) { handle(e); } finally { done(); }
label: for (;;) { break label; }
with (o) { p = 1; }
`
	prog := parse(t, src)
	types := map[string]int{}
	Inspect(prog, func(n Node) bool {
		types[n.Type()]++
		return true
	})
	for _, want := range []string{"ForStatement", "ForInStatement",
		"WhileStatement", "DoWhileStatement", "SwitchStatement",
		"TryStatement", "CatchClause", "LabeledStatement", "WithStatement"} {
		if types[want] == 0 {
			t.Errorf("no %s parsed", want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := parse(t, "x = 1 + 2 * 3;")
	assign := prog.Body[0].(*ExprStmt).X.(*Assign)
	add, ok := assign.R.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("rhs = %#v, want '+' at top", assign.R)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs of + = %#v, want '*'", add.R)
	}
}

func TestParseLogicalChain(t *testing.T) {
	prog := parse(t, "detected = a === null || b == 0 || c == 0;")
	assign := prog.Body[0].(*ExprStmt).X.(*Assign)
	or, ok := assign.R.(*Logical)
	if !ok || or.Op != "||" {
		t.Fatalf("rhs = %#v", assign.R)
	}
}

func TestParseTernaryAndSequence(t *testing.T) {
	prog := parse(t, "r = (a ? b : c, d);")
	assign := prog.Body[0].(*ExprStmt).X.(*Assign)
	seq, ok := assign.R.(*Sequence)
	if !ok || len(seq.Exprs) != 2 {
		t.Fatalf("rhs = %#v, want sequence of 2", assign.R)
	}
	if _, ok := seq.Exprs[0].(*Conditional); !ok {
		t.Fatalf("first = %#v, want conditional", seq.Exprs[0])
	}
}

func TestParseNewExpression(t *testing.T) {
	prog := parse(t, "var d = new Date(); var x = new a.b.C(1, 2); var y = new F;")
	news := 0
	Inspect(prog, func(n Node) bool {
		if _, ok := n.(*New); ok {
			news++
		}
		return true
	})
	if news != 3 {
		t.Fatalf("new expressions = %d, want 3", news)
	}
}

func TestParseObjectAndArrayLiterals(t *testing.T) {
	prog := parse(t, `var o = {a: 1, "b": [2, 3], 'c': {d: null}, default: 4};`)
	objs, arrs := 0, 0
	Inspect(prog, func(n Node) bool {
		switch n.(type) {
		case *ObjectLit:
			objs++
		case *ArrayLit:
			arrs++
		}
		return true
	})
	if objs != 2 || arrs != 1 {
		t.Fatalf("objects=%d arrays=%d", objs, arrs)
	}
}

func TestParseASI(t *testing.T) {
	// No semicolons at all: ASI must hold.
	prog := parse(t, "var a = 1\nvar b = 2\nreturnValue(a + b)")
	if len(prog.Body) != 3 {
		t.Fatalf("statements = %d, want 3", len(prog.Body))
	}
}

func TestParseReturnASI(t *testing.T) {
	prog := parse(t, "function f() { return\n1 }")
	fd := prog.Body[0].(*FunctionDecl)
	ret := fd.Body.Body[0].(*Return)
	if ret.Arg != nil {
		t.Fatal("return followed by newline must not take an argument")
	}
}

func TestParseComputedMember(t *testing.T) {
	prog := parse(t, `document.getElementsByTagName("head")[0].appendChild(s);`)
	computed := false
	Inspect(prog, func(n Node) bool {
		if m, ok := n.(*Member); ok && m.Computed {
			computed = true
		}
		return true
	})
	if !computed {
		t.Fatal("computed member access not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"if (", "function (){}", "var ;", "a +", "try {}", "{",
		"switch (x) { foo }", "do { } until (x);",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseKeywordPropertyNames(t *testing.T) {
	prog := parse(t, "x.delete(); y.new; o = {in: 1, for: 2};")
	if len(prog.Body) != 3 {
		t.Fatalf("statements = %d", len(prog.Body))
	}
}

func TestParseRegexLiteralStatement(t *testing.T) {
	prog := parse(t, `var re = /adb[lL]ock/gi; re.test(navigator.userAgent);`)
	found := false
	Inspect(prog, func(n Node) bool {
		if l, ok := n.(*Literal); ok && l.Kind == LitRegex {
			found = strings.HasPrefix(l.Value, "/adb")
		}
		return true
	})
	if !found {
		t.Fatal("regex literal missing from AST")
	}
}

func TestChildrenCoversEveryNodeType(t *testing.T) {
	src := code4 + code5 + code8 + `
for (k in o) {}
l: while (0) { continue l; }
switch (x) { default: ; }
try { t(); } finally { f(); }
var arr = [1, , 2];
debugger;
u = typeof -+!~v;
p = i++ + --j;
q = a in b;
`
	prog := parse(t, src)
	n := Count(prog)
	if n < 100 {
		t.Fatalf("node count = %d, suspiciously small", n)
	}
	// WalkParents must visit exactly the same number of nodes.
	visited := 0
	WalkParents(prog, func(Node, Node) { visited++ })
	if visited != n {
		t.Fatalf("WalkParents visited %d, Inspect counted %d", visited, n)
	}
}

func TestWalkParentsParentLinks(t *testing.T) {
	prog := parse(t, "if (x) { y(); }")
	WalkParents(prog, func(n, parent Node) {
		if _, ok := n.(*Program); ok {
			if parent != nil {
				t.Error("program must have nil parent")
			}
		} else if parent == nil {
			t.Errorf("node %s has nil parent", n.Type())
		}
	})
}
