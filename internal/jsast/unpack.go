package jsast

import (
	"regexp"
	"strconv"
	"strings"
)

// maxUnpackDepth bounds recursive unpacking of nested eval payloads.
const maxUnpackDepth = 5

// Unpack finds dynamically generated code in the program — eval() of string
// payloads, unescape()-encoded payloads, and Dean Edwards p.a.c.k.e.r
// payloads — parses it, and appends the recovered statements to the program
// body so that feature extraction sees the unpacked code. It reproduces the
// effect of the paper's V8 script.parsed interception statically.
//
// It returns the number of payloads that were successfully unpacked.
func Unpack(prog *Program) int {
	return unpack(prog, 0)
}

func unpack(prog *Program, depth int) int {
	if depth >= maxUnpackDepth {
		return 0
	}
	var payloads []string
	Inspect(prog, func(n Node) bool {
		call, ok := n.(*Call)
		if !ok {
			return true
		}
		if id, ok := call.Callee.(*Ident); !ok || id.Name != "eval" || len(call.Args) != 1 {
			return true
		}
		if src, ok := decodePayload(call.Args[0]); ok {
			payloads = append(payloads, src)
		}
		return true
	})
	count := 0
	for _, src := range payloads {
		sub, err := Parse(src)
		if err != nil {
			continue
		}
		count += 1 + unpack(sub, depth+1)
		prog.Body = append(prog.Body, sub.Body...)
	}
	return count
}

// ParseAndUnpack parses src and unpacks dynamic payloads in one step.
func ParseAndUnpack(src string) (*Program, int, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, 0, err
	}
	n := Unpack(prog)
	return prog, n, nil
}

// decodePayload statically evaluates the argument of an eval() call to a
// source string, handling the encodings anti-adblock scripts use in the
// wild: plain string literals, '+' concatenation chains, unescape(),
// String.fromCharCode(), and p.a.c.k.e.r bootstraps.
func decodePayload(arg Node) (string, bool) {
	if s, ok := foldString(arg); ok {
		return s, true
	}
	if s, ok := decodePacker(arg); ok {
		return s, true
	}
	return "", false
}

// foldString constant-folds an expression to a string, if possible.
func foldString(n Node) (string, bool) {
	switch v := n.(type) {
	case *Literal:
		if v.Kind == LitString {
			return v.Value, true
		}
		return "", false
	case *Binary:
		if v.Op != "+" {
			return "", false
		}
		l, ok := foldString(v.L)
		if !ok {
			return "", false
		}
		r, ok := foldString(v.R)
		if !ok {
			return "", false
		}
		return l + r, true
	case *Call:
		// unescape("%61%62…")
		if id, ok := v.Callee.(*Ident); ok && id.Name == "unescape" && len(v.Args) == 1 {
			if s, ok := foldString(v.Args[0]); ok {
				return percentDecode(s), true
			}
			return "", false
		}
		// String.fromCharCode(97, 108, …)
		if m, ok := v.Callee.(*Member); ok && !m.Computed {
			obj, okObj := m.Obj.(*Ident)
			prop, okProp := m.Prop.(*Ident)
			if okObj && okProp && obj.Name == "String" && prop.Name == "fromCharCode" {
				var b strings.Builder
				for _, a := range v.Args {
					lit, ok := a.(*Literal)
					if !ok || lit.Kind != LitNumber {
						return "", false
					}
					f, err := strconv.ParseFloat(lit.Value, 64)
					if err != nil {
						return "", false
					}
					b.WriteRune(rune(int(f)))
				}
				return b.String(), true
			}
		}
		return "", false
	default:
		return "", false
	}
}

// percentDecode implements JavaScript's unescape(): %XX byte escapes and
// %uXXXX unicode escapes; malformed escapes pass through verbatim.
func percentDecode(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '%' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+5 < len(s) && s[i+1] == 'u' && allHex(s[i+2:i+6]) {
			v, _ := strconv.ParseUint(s[i+2:i+6], 16, 32)
			b.WriteRune(rune(v))
			i += 6
			continue
		}
		if i+2 < len(s) && allHex(s[i+1:i+3]) {
			v, _ := strconv.ParseUint(s[i+1:i+3], 16, 8)
			b.WriteByte(byte(v))
			i += 3
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func allHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isHexDigit(s[i]) {
			return false
		}
	}
	return true
}

// packerToken matches the word tokens the p.a.c.k.e.r payload substitutes.
var packerToken = regexp.MustCompile(`\b\w+\b`)

// decodePacker recognizes the Dean Edwards packer bootstrap
//
//	eval(function(p,a,c,k,e,d){…}('payload', radix, count, 'w0|w1|…'.split('|'), 0, {}))
//
// and decodes the payload without executing it.
func decodePacker(arg Node) (string, bool) {
	call, ok := arg.(*Call)
	if !ok {
		return "", false
	}
	fn, ok := call.Callee.(*FunctionExpr)
	if !ok || len(fn.Params) < 4 || len(call.Args) < 4 {
		return "", false
	}
	payloadLit, ok := call.Args[0].(*Literal)
	if !ok || payloadLit.Kind != LitString {
		return "", false
	}
	radixLit, ok := call.Args[1].(*Literal)
	if !ok || radixLit.Kind != LitNumber {
		return "", false
	}
	countLit, ok := call.Args[2].(*Literal)
	if !ok || countLit.Kind != LitNumber {
		return "", false
	}
	words, ok := splitCallWords(call.Args[3])
	if !ok {
		return "", false
	}
	radix, err1 := strconv.Atoi(radixLit.Value)
	count, err2 := strconv.Atoi(countLit.Value)
	if err1 != nil || err2 != nil || radix < 2 || count < 0 {
		return "", false
	}
	payload := payloadLit.Value
	out := packerToken.ReplaceAllStringFunc(payload, func(tok string) string {
		idx, ok := packerDecode(tok, radix)
		if !ok || idx >= len(words) || idx >= count || words[idx] == "" {
			return tok
		}
		return words[idx]
	})
	return out, true
}

// splitCallWords matches the `'a|b|c'.split('|')` idiom and returns the
// word list.
func splitCallWords(n Node) ([]string, bool) {
	call, ok := n.(*Call)
	if !ok {
		return nil, false
	}
	m, ok := call.Callee.(*Member)
	if !ok || m.Computed {
		return nil, false
	}
	prop, ok := m.Prop.(*Ident)
	if !ok || prop.Name != "split" {
		return nil, false
	}
	src, ok := m.Obj.(*Literal)
	if !ok || src.Kind != LitString {
		return nil, false
	}
	if len(call.Args) != 1 {
		return nil, false
	}
	sep, ok := call.Args[0].(*Literal)
	if !ok || sep.Kind != LitString {
		return nil, false
	}
	return strings.Split(src.Value, sep.Value), true
}

// packerDecode interprets a token as a packer base-N index. For radix ≤ 36
// this is plain base-N; for larger radixes the packer's digit alphabet is
// 0-9, a-z, then A-Z.
func packerDecode(tok string, radix int) (int, bool) {
	if radix <= 36 {
		v, err := strconv.ParseInt(strings.ToLower(tok), radix, 64)
		if err != nil || v < 0 {
			return 0, false
		}
		return int(v), true
	}
	v := 0
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'z':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'Z':
			d = int(c-'A') + 36
		default:
			return 0, false
		}
		if d >= radix {
			return 0, false
		}
		v = v*radix + d
	}
	return v, true
}
