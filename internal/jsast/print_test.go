package jsast

import (
	"reflect"
	"strings"
	"testing"
)

// normalize reparses printed output; trees must converge after one print.
func reprint(t *testing.T, src string) (string, *Program) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	out := Print(prog)
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\n%s", err, out)
	}
	return out, prog2
}

func TestPrintRoundTripPaperSnippets(t *testing.T) {
	for name, src := range map[string]string{
		"code4": code4, "code5": code5, "code8": code8,
	} {
		t.Run(name, func(t *testing.T) {
			prog, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			printed, prog2 := reprint(t, src)
			// The printed form must be a fixed point: printing the
			// reparsed tree reproduces it.
			printed2 := Print(prog2)
			if printed != printed2 {
				t.Fatalf("print not idempotent:\n--- first\n%s\n--- second\n%s", printed, printed2)
			}
			// Structural equivalence of the original and reparsed trees.
			if !reflect.DeepEqual(strip(prog), strip(prog2)) {
				t.Fatal("reparsed tree differs from original")
			}
		})
	}
}

// strip maps a tree to its type/text skeleton for structural comparison.
func strip(prog *Program) []string {
	var out []string
	Inspect(prog, func(n Node) bool {
		switch v := n.(type) {
		case *Ident:
			out = append(out, "I:"+v.Name)
		case *Literal:
			out = append(out, "L:"+v.Value)
		default:
			out = append(out, n.Type())
		}
		return true
	})
	return out
}

func TestPrintPrecedence(t *testing.T) {
	cases := []string{
		"x = (a + b) * c;",
		"y = a + b * c;",
		"z = (a = b) + 1;",
		"w = a || b && c;",
		"v = (a || b) && c;",
		"u = -(-a);",
		"s = (a, b);",
		"r = typeof (a + b);",
		"q = (a ? b : c) ? d : e;",
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		printed := Print(prog)
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if !reflect.DeepEqual(strip(prog), strip(prog2)) {
			t.Errorf("precedence lost: %q → %q", src, strings.TrimSpace(printed))
		}
	}
}

func TestPrintStatements(t *testing.T) {
	src := `
label: for (var i = 0, j = 1; i < 10; i++) { if (i > 5) break label; else continue; }
for (k in o) delete o[k];
do { tick(); } while (more);
switch (x) { case 1: a(); break; default: b(); }
try { r(); } catch (e) { h(e); } finally { f(); }
with (o) { p = 1; }
throw new Error("boom");
debugger;
;
var fn = function named(a, b) { return a + b; };
var obj = {a: 1, "b c": 2, in: 3};
var arr = [1, 2, [3]];
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if !reflect.DeepEqual(strip(prog), strip(prog2)) {
		t.Fatalf("structure lost:\n%s", printed)
	}
}

func TestPrintStringEscapes(t *testing.T) {
	src := `var s = "a\"b\\c\nd\te";`
	_, prog2 := reprint(t, src)
	found := false
	Inspect(prog2, func(n Node) bool {
		if l, ok := n.(*Literal); ok && l.Kind == LitString {
			if l.Value == "a\"b\\c\nd\te" {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Fatal("string escapes lost in round trip")
	}
}

func TestPrintRegexAndNumbers(t *testing.T) {
	src := `var re = /ad[bB]lock/gi; var n = 0xFF; var f = 1.5e3;`
	printed, _ := reprint(t, src)
	for _, want := range []string{"/ad[bB]lock/gi", "0xFF", "1.5e3"} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed output missing %q:\n%s", want, printed)
		}
	}
}
