package jsast

// Node is implemented by every AST node. Type returns the ESTree-style node
// type name ("MemberExpression", "IfStatement", …); the feature extractor of
// §5 uses these names as the "context" part of its context:text features.
type Node interface {
	Type() string
}

// ---- Statements ----

// Program is the root node of a parsed script.
type Program struct {
	Body []Node
}

// FunctionDecl is a function declaration statement.
type FunctionDecl struct {
	Name   string
	Params []string
	Body   *Block
}

// VarDecl is a 'var' statement with one or more declarators.
type VarDecl struct {
	Decls []*Declarator
}

// Declarator is one name[=init] of a var statement.
type Declarator struct {
	Name string
	Init Node // nil when absent
}

// Block is a { … } statement list.
type Block struct {
	Body []Node
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	X Node
}

// If is an if/else statement.
type If struct {
	Cond Node
	Then Node
	Else Node // nil when absent
}

// For is a classic three-clause for loop; any clause may be nil.
type For struct {
	Init Node
	Cond Node
	Post Node
	Body Node
}

// ForIn is a for-in loop.
type ForIn struct {
	Left  Node // VarDecl or expression
	Right Node
	Body  Node
}

// While is a while loop.
type While struct {
	Cond Node
	Body Node
}

// DoWhile is a do-while loop.
type DoWhile struct {
	Body Node
	Cond Node
}

// Return is a return statement (Arg may be nil).
type Return struct {
	Arg Node
}

// Try is a try/catch/finally statement.
type Try struct {
	Body    *Block
	Catch   *Catch // nil when absent
	Finally *Block // nil when absent
}

// Catch is the catch clause of a try statement.
type Catch struct {
	Param string
	Body  *Block
}

// Throw is a throw statement.
type Throw struct {
	Arg Node
}

// Switch is a switch statement.
type Switch struct {
	Disc  Node
	Cases []*Case
}

// Case is one case (or default, when Test is nil) of a switch.
type Case struct {
	Test Node
	Body []Node
}

// Break is a break statement with an optional label.
type Break struct {
	Label string
}

// Continue is a continue statement with an optional label.
type Continue struct {
	Label string
}

// Labeled is a labeled statement.
type Labeled struct {
	Label string
	Body  Node
}

// Empty is a lone ';'.
type Empty struct{}

// With is a with statement (parsed for completeness).
type With struct {
	Obj  Node
	Body Node
}

// Debugger is a debugger statement.
type Debugger struct{}

// ---- Expressions ----

// Ident is an identifier reference.
type Ident struct {
	Name string
}

// LiteralKind distinguishes literal value categories.
type LiteralKind int

// Literal kinds.
const (
	LitString LiteralKind = iota
	LitNumber
	LitBool
	LitNull
	LitUndefined
	LitRegex
)

// Literal is a primitive literal. Value holds the decoded string value for
// strings, the literal text for numbers and regexes, and "true"/"false"/
// "null"/"undefined" otherwise.
type Literal struct {
	Kind  LiteralKind
	Value string
}

// This is a 'this' expression.
type This struct{}

// ArrayLit is an array literal.
type ArrayLit struct {
	Elems []Node
}

// ObjectLit is an object literal.
type ObjectLit struct {
	Props []*Property
}

// Property is one key: value pair of an object literal.
type Property struct {
	Key   string
	Value Node
}

// FunctionExpr is a (possibly named) function expression.
type FunctionExpr struct {
	Name   string
	Params []string
	Body   *Block
}

// Unary is a prefix unary expression (!, -, +, ~, typeof, void, delete).
type Unary struct {
	Op string
	X  Node
}

// Update is ++/-- in prefix or postfix position.
type Update struct {
	Op     string
	Prefix bool
	X      Node
}

// Binary is an arithmetic/relational binary expression.
type Binary struct {
	Op   string
	L, R Node
}

// Logical is && or ||.
type Logical struct {
	Op   string
	L, R Node
}

// Assign is an assignment (=, +=, …).
type Assign struct {
	Op   string
	L, R Node
}

// Conditional is the ternary ?: expression.
type Conditional struct {
	Cond, Then, Else Node
}

// Call is a function call.
type Call struct {
	Callee Node
	Args   []Node
}

// New is a new-expression.
type New struct {
	Callee Node
	Args   []Node
}

// Member is property access: obj.name or obj[expr].
type Member struct {
	Obj      Node
	Prop     Node // Ident for .name, arbitrary expression when Computed
	Computed bool
}

// Sequence is the comma operator.
type Sequence struct {
	Exprs []Node
}

// Type implementations (ESTree names).

func (*Program) Type() string      { return "Program" }
func (*FunctionDecl) Type() string { return "FunctionDeclaration" }
func (*VarDecl) Type() string      { return "VariableDeclaration" }
func (*Declarator) Type() string   { return "VariableDeclarator" }
func (*Block) Type() string        { return "BlockStatement" }
func (*ExprStmt) Type() string     { return "ExpressionStatement" }
func (*If) Type() string           { return "IfStatement" }
func (*For) Type() string          { return "ForStatement" }
func (*ForIn) Type() string        { return "ForInStatement" }
func (*While) Type() string        { return "WhileStatement" }
func (*DoWhile) Type() string      { return "DoWhileStatement" }
func (*Return) Type() string       { return "ReturnStatement" }
func (*Try) Type() string          { return "TryStatement" }
func (*Catch) Type() string        { return "CatchClause" }
func (*Throw) Type() string        { return "ThrowStatement" }
func (*Switch) Type() string       { return "SwitchStatement" }
func (*Case) Type() string         { return "SwitchCase" }
func (*Break) Type() string        { return "BreakStatement" }
func (*Continue) Type() string     { return "ContinueStatement" }
func (*Labeled) Type() string      { return "LabeledStatement" }
func (*Empty) Type() string        { return "EmptyStatement" }
func (*With) Type() string         { return "WithStatement" }
func (*Debugger) Type() string     { return "DebuggerStatement" }
func (*Ident) Type() string        { return "Identifier" }
func (*Literal) Type() string      { return "Literal" }
func (*This) Type() string         { return "ThisExpression" }
func (*ArrayLit) Type() string     { return "ArrayExpression" }
func (*ObjectLit) Type() string    { return "ObjectExpression" }
func (*Property) Type() string     { return "Property" }
func (*FunctionExpr) Type() string { return "FunctionExpression" }
func (*Unary) Type() string        { return "UnaryExpression" }
func (*Update) Type() string       { return "UpdateExpression" }
func (*Binary) Type() string       { return "BinaryExpression" }
func (*Logical) Type() string      { return "LogicalExpression" }
func (*Assign) Type() string       { return "AssignmentExpression" }
func (*Conditional) Type() string  { return "ConditionalExpression" }
func (*Call) Type() string         { return "CallExpression" }
func (*New) Type() string          { return "NewExpression" }
func (*Member) Type() string       { return "MemberExpression" }
func (*Sequence) Type() string     { return "SequenceExpression" }

// Children returns the node's direct child nodes in source order. Nil
// children are omitted.
func Children(n Node) []Node {
	add := func(dst []Node, ns ...Node) []Node {
		for _, x := range ns {
			if x != nil && !isNilNode(x) {
				dst = append(dst, x)
			}
		}
		return dst
	}
	var out []Node
	switch v := n.(type) {
	case *Program:
		out = add(out, v.Body...)
	case *FunctionDecl:
		out = add(out, v.Body)
	case *VarDecl:
		for _, d := range v.Decls {
			out = add(out, d)
		}
	case *Declarator:
		out = add(out, v.Init)
	case *Block:
		out = add(out, v.Body...)
	case *ExprStmt:
		out = add(out, v.X)
	case *If:
		out = add(out, v.Cond, v.Then, v.Else)
	case *For:
		out = add(out, v.Init, v.Cond, v.Post, v.Body)
	case *ForIn:
		out = add(out, v.Left, v.Right, v.Body)
	case *While:
		out = add(out, v.Cond, v.Body)
	case *DoWhile:
		out = add(out, v.Body, v.Cond)
	case *Return:
		out = add(out, v.Arg)
	case *Try:
		out = add(out, v.Body)
		if v.Catch != nil {
			out = add(out, v.Catch)
		}
		if v.Finally != nil {
			out = add(out, v.Finally)
		}
	case *Catch:
		out = add(out, v.Body)
	case *Throw:
		out = add(out, v.Arg)
	case *Switch:
		out = add(out, v.Disc)
		for _, c := range v.Cases {
			out = add(out, c)
		}
	case *Case:
		out = add(out, v.Test)
		out = add(out, v.Body...)
	case *Labeled:
		out = add(out, v.Body)
	case *With:
		out = add(out, v.Obj, v.Body)
	case *ArrayLit:
		out = add(out, v.Elems...)
	case *ObjectLit:
		for _, p := range v.Props {
			out = add(out, p)
		}
	case *Property:
		out = add(out, v.Value)
	case *FunctionExpr:
		out = add(out, v.Body)
	case *Unary:
		out = add(out, v.X)
	case *Update:
		out = add(out, v.X)
	case *Binary:
		out = add(out, v.L, v.R)
	case *Logical:
		out = add(out, v.L, v.R)
	case *Assign:
		out = add(out, v.L, v.R)
	case *Conditional:
		out = add(out, v.Cond, v.Then, v.Else)
	case *Call:
		out = add(out, v.Callee)
		out = add(out, v.Args...)
	case *New:
		out = add(out, v.Callee)
		out = add(out, v.Args...)
	case *Member:
		out = add(out, v.Obj, v.Prop)
	case *Sequence:
		out = add(out, v.Exprs...)
	}
	return out
}

// isNilNode guards against typed-nil interface values from optional fields.
func isNilNode(n Node) bool {
	switch v := n.(type) {
	case *Block:
		return v == nil
	case *Catch:
		return v == nil
	default:
		return false
	}
}

// Inspect walks the tree rooted at n in depth-first order, calling f for
// each node. If f returns false the node's children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	for _, c := range Children(n) {
		Inspect(c, f)
	}
}

// WalkParents walks the tree calling f with each node and its parent
// (parent is nil for the root). Children are always visited.
func WalkParents(n Node, f func(n, parent Node)) {
	var rec func(n, parent Node)
	rec = func(n, parent Node) {
		f(n, parent)
		for _, c := range Children(n) {
			rec(c, n)
		}
	}
	if n != nil {
		rec(n, nil)
	}
}

// Count returns the number of nodes in the tree.
func Count(n Node) int {
	total := 0
	Inspect(n, func(Node) bool { total++; return true })
	return total
}
