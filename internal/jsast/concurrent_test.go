package jsast

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentParseAndUnpack drives ParseAndUnpack from many goroutines
// over a shared corpus (run under -race in CI). The parser keeps all state
// on its own instance, so concurrent parses of distinct — and identical —
// sources must be independent and deterministic; the feature-extraction
// fan-out in internal/features relies on exactly this property.
func TestConcurrentParseAndUnpack(t *testing.T) {
	var srcs []string
	for i := 0; i < 16; i++ {
		srcs = append(srcs, fmt.Sprintf(`
var x%d = %d;
function f%d(a, b) { return a + b * x%d; }
eval("var un%d = 'packed';");
if (document.getElementById('ad_%d')) { f%d(1, 2); }
`, i, i, i, i, i, i, i))
	}
	want := make([]string, len(srcs))
	wantUnpacked := make([]int, len(srcs))
	for i, src := range srcs {
		prog, n, err := ParseAndUnpack(src)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = Print(prog)
		wantUnpacked[i] = n
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, src := range srcs {
					prog, n, err := ParseAndUnpack(src)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d: parse %d: %v", g, i, err)
						return
					}
					if n != wantUnpacked[i] {
						errc <- fmt.Errorf("goroutine %d: src %d unpacked %d payloads, want %d", g, i, n, wantUnpacked[i])
						return
					}
					if got := Print(prog); got != want[i] {
						errc <- fmt.Errorf("goroutine %d: src %d AST diverges under concurrency", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
