package jsast

import "testing"

func TestUnpackStringLiteralEval(t *testing.T) {
	src := `eval("var hiddenAdblockCheck = 1;");`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("unpacked = %d, want 1", n)
	}
	if !hasIdent(prog, "hiddenAdblockCheck") {
		t.Fatal("unpacked statement missing from program body")
	}
}

func TestUnpackConcatenation(t *testing.T) {
	src := `eval("var ad" + "block" + "Flag = true;");`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !hasIdent(prog, "adblockFlag") {
		t.Fatalf("unpacked=%d hasIdent=%v", n, hasIdent(prog, "adblockFlag"))
	}
}

func TestUnpackUnescape(t *testing.T) {
	// "var x = offsetHeight;" percent-encoded.
	src := `eval(unescape("%76%61%72%20%78%20%3D%20offsetHeight%3B"));`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !hasIdent(prog, "offsetHeight") {
		t.Fatalf("unpacked=%d", n)
	}
}

func TestUnpackFromCharCode(t *testing.T) {
	// "var q=1" = 118 97 114 32 113 61 49
	src := `eval(String.fromCharCode(118, 97, 114, 32, 113, 61, 49));`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !hasIdent(prog, "q") {
		t.Fatalf("unpacked=%d", n)
	}
}

func TestUnpackNestedEval(t *testing.T) {
	src := `eval("eval(\"var nested = 2;\");");`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("unpacked = %d, want 2", n)
	}
	if !hasIdent(prog, "nested") {
		t.Fatal("nested payload not recovered")
	}
}

func TestUnpackPacker(t *testing.T) {
	// eval(function(p,a,c,k,e,d){...}('0 1=2;',10,3,'var|bait|detected'.split('|'),0,{}))
	src := `eval(function(p,a,c,k,e,d){e=function(c){return c};while(c--){if(k[c]){p=p.replace(new RegExp('\\b'+e(c)+'\\b','g'),k[c])}}return p}('0 1=2;',10,3,'var|bait|detected'.split('|'),0,{}));`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("unpacked = %d, want 1", n)
	}
	if !hasIdent(prog, "bait") {
		t.Fatal("packer payload 'var bait=detected;' not recovered")
	}
}

func TestUnpackPackerBase62(t *testing.T) {
	// Token 'A' decodes to index 36 in base 62; build a word list that
	// exercises it: indexes 0..36, with only a few words defined.
	words := make([]string, 37)
	words[0] = "var"
	words[1] = "marker62"
	payload := "0 1;"
	wordStr := ""
	for i, w := range words {
		if i > 0 {
			wordStr += "|"
		}
		wordStr += w
	}
	src := `eval(function(p,a,c,k,e,d){}('` + payload + `',62,37,'` + wordStr + `'.split('|'),0,{}));`
	prog, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !hasIdent(prog, "marker62") {
		t.Fatalf("unpacked=%d", n)
	}
}

func TestUnpackIgnoresDynamicEval(t *testing.T) {
	src := `eval(userInput);` // cannot be decoded statically
	_, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unpacked = %d, want 0", n)
	}
}

func TestUnpackIgnoresMalformedPayload(t *testing.T) {
	src := `eval("this is not ((( valid js");`
	_, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unpacked = %d, want 0", n)
	}
}

func TestUnpackDepthBound(t *testing.T) {
	// Build eval nesting deeper than maxUnpackDepth; must terminate.
	src := `var deepest = 1;`
	for i := 0; i < maxUnpackDepth+3; i++ {
		src = `eval(` + quoteJS(src) + `);`
	}
	_, n, err := ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if n > maxUnpackDepth {
		t.Fatalf("unpacked %d levels, bound is %d", n, maxUnpackDepth)
	}
}

func TestPercentDecode(t *testing.T) {
	cases := map[string]string{
		"%41%42":  "AB",
		"%u0041x": "Ax",
		"plain":   "plain",
		"%zz":     "%zz",
		"100%25":  "100%",
		"%u00e9":  "é",
		"trail%":  "trail%",
	}
	for in, want := range cases {
		if got := percentDecode(in); got != want {
			t.Errorf("percentDecode(%q) = %q, want %q", in, got, want)
		}
	}
}

func hasIdent(prog *Program, name string) bool {
	found := false
	Inspect(prog, func(n Node) bool {
		switch v := n.(type) {
		case *Ident:
			if v.Name == name {
				found = true
			}
		case *Declarator:
			if v.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}

// quoteJS wraps s in double quotes with JS escaping for quotes/backslashes.
func quoteJS(s string) string {
	out := `"`
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			out += `\` + string(s[i])
		case '\n':
			out += `\n`
		default:
			out += string(s[i])
		}
	}
	return out + `"`
}
