package jsast

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokRegex
	TokPunct
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "eof"
	case TokIdent:
		return "ident"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokRegex:
		return "regex"
	case TokPunct:
		return "punct"
	default:
		return "unknown"
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	// Text is the token's meaning-bearing text: the identifier or keyword
	// name, the decoded string value, the number literal text, the regex
	// source, or the punctuation characters.
	Text string
	// Line and Col locate the token (1-based).
	Line, Col int
	// NewlineBefore reports whether a line terminator occurred between
	// the previous token and this one; the parser's automatic semicolon
	// insertion depends on it.
	NewlineBefore bool
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// jsKeywords are the ECMAScript 5 reserved words the parser understands.
var jsKeywords = map[string]bool{
	"break": true, "case": true, "catch": true, "continue": true,
	"debugger": true, "default": true, "delete": true, "do": true,
	"else": true, "finally": true, "for": true, "function": true,
	"if": true, "in": true, "instanceof": true, "new": true,
	"return": true, "switch": true, "this": true, "throw": true,
	"try": true, "typeof": true, "var": true, "void": true,
	"while": true, "with": true, "true": true, "false": true,
	"null": true, "undefined": true,
}

// IsKeyword reports whether name is a native JavaScript keyword.
func IsKeyword(name string) bool { return jsKeywords[name] }

// punctuators, longest first per leading byte, for maximal-munch scanning.
var punctuators = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=",
	"&&", "||", "++", "--", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
	"&=", "|=", "^=", "=>",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*",
	"/", "%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
}

// Lexer turns JavaScript source into tokens. Create with NewLexer.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	// prev is the last non-comment token, used to disambiguate '/'
	// (division vs regex literal).
	prev Token
	// sawNewline tracks line terminators since the previous token.
	sawNewline bool
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// SyntaxError reports a lexical or parse error with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("js syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
		l.sawNewline = true
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace and // and /* */ comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$' || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// regexAllowed reports whether a '/' at the current position starts a regex
// literal, judged from the previous token (the standard heuristic).
func (l *Lexer) regexAllowed() bool {
	switch l.prev.Kind {
	case TokIdent, TokNumber, TokString, TokRegex:
		return false
	case TokKeyword:
		// After 'this', 'true', etc. a '/' is division.
		switch l.prev.Text {
		case "this", "true", "false", "null", "undefined":
			return false
		}
		return true
	case TokPunct:
		switch l.prev.Text {
		case ")", "]", "}", "++", "--":
			return false
		}
		return true
	default: // start of input
		return true
	}
}

// Next returns the next token. At end of input it returns a TokEOF token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col, NewlineBefore: l.sawNewline}
	l.sawNewline = false
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		l.prev = tok
		return tok, nil
	}

	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if jsKeywords[tok.Text] {
			tok.Kind = TokKeyword
		} else {
			tok.Kind = TokIdent
		}
	case isDigit(c) || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		text, err := l.scanNumber()
		if err != nil {
			return Token{}, err
		}
		tok.Kind, tok.Text = TokNumber, text
	case c == '"' || c == '\'':
		text, err := l.scanString(c)
		if err != nil {
			return Token{}, err
		}
		tok.Kind, tok.Text = TokString, text
	case c == '/' && l.regexAllowed():
		text, err := l.scanRegex()
		if err != nil {
			return Token{}, err
		}
		tok.Kind, tok.Text = TokRegex, text
	default:
		p := l.matchPunct()
		if p == "" {
			return Token{}, l.errorf("unexpected character %q", c)
		}
		for range p {
			l.advance()
		}
		tok.Kind, tok.Text = TokPunct, p
	}
	l.prev = tok
	return tok, nil
}

func (l *Lexer) matchPunct() string {
	rest := l.src[l.pos:]
	for _, p := range punctuators {
		if len(rest) >= len(p) && rest[:len(p)] == p {
			return p
		}
	}
	return ""
}

func (l *Lexer) scanNumber() (string, error) {
	start := l.pos
	if l.peekByte() == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.advance()
		}
		return l.src[start:l.pos], nil
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.advance()
	}
	if l.peekByte() == '.' {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance()
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		l.advance()
		if c := l.peekByte(); c == '+' || c == '-' {
			l.advance()
		}
		if !isDigit(l.peekByte()) {
			return "", l.errorf("malformed exponent")
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance()
		}
	}
	return l.src[start:l.pos], nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// scanString consumes a quoted string and returns its decoded value.
func (l *Lexer) scanString(quote byte) (string, error) {
	l.advance() // opening quote
	var out []byte
	for {
		if l.pos >= len(l.src) {
			return "", l.errorf("unterminated string literal")
		}
		c := l.advance()
		switch c {
		case quote:
			return string(out), nil
		case '\n':
			return "", l.errorf("newline in string literal")
		case '\\':
			if l.pos >= len(l.src) {
				return "", l.errorf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case 'r':
				out = append(out, '\r')
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'v':
				out = append(out, '\v')
			case '0':
				out = append(out, 0)
			case 'x':
				if l.pos+1 < len(l.src) && isHexDigit(l.src[l.pos]) && isHexDigit(l.src[l.pos+1]) {
					v := hexVal(l.advance())<<4 | hexVal(l.advance())
					out = append(out, byte(v))
				} else {
					out = append(out, 'x')
				}
			case 'u':
				if l.pos+3 < len(l.src) && isHexDigit(l.src[l.pos]) && isHexDigit(l.src[l.pos+1]) &&
					isHexDigit(l.src[l.pos+2]) && isHexDigit(l.src[l.pos+3]) {
					v := hexVal(l.advance())<<12 | hexVal(l.advance())<<8 |
						hexVal(l.advance())<<4 | hexVal(l.advance())
					out = append(out, []byte(string(rune(v)))...)
				} else {
					out = append(out, 'u')
				}
			case '\n':
				// line continuation: nothing appended
			default:
				out = append(out, e)
			}
		default:
			out = append(out, c)
		}
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// scanRegex consumes a /regex/flags literal and returns its full source.
func (l *Lexer) scanRegex() (string, error) {
	start := l.pos
	l.advance() // '/'
	inClass := false
	for {
		if l.pos >= len(l.src) {
			return "", l.errorf("unterminated regex literal")
		}
		c := l.advance()
		switch c {
		case '\\':
			if l.pos < len(l.src) {
				l.advance()
			}
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '\n':
			return "", l.errorf("newline in regex literal")
		case '/':
			if !inClass {
				for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
					l.advance()
				}
				return l.src[start:l.pos], nil
			}
		}
	}
}

// Tokenize scans all of src, returning the token stream (without the
// trailing EOF token).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
