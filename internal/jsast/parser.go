package jsast

import "fmt"

// Parse parses JavaScript source into a Program. It accepts the ES5 subset
// used by real-world anti-adblock scripts: all statements, function
// declarations and expressions, and the full expression grammar including
// regex literals, with automatic semicolon insertion.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, stmt)
	}
	return prog, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) atEOF() bool { return p.i >= len(p.toks) }

func (p *parser) cur() Token {
	if p.atEOF() {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.i]
}

func (p *parser) peek(k int) Token {
	if p.i+k >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.i+k]
}

func (p *parser) next() Token {
	t := p.cur()
	if !p.atEOF() {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	t := p.cur()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) atKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.i++
	return t.Text, nil
}

// semicolon consumes a statement terminator, applying automatic semicolon
// insertion: an explicit ';', a '}' (not consumed), end of input, or a line
// break before the next token all terminate the statement.
func (p *parser) semicolon() error {
	if p.eatPunct(";") {
		return nil
	}
	if p.atEOF() || p.atPunct("}") || p.cur().NewlineBefore {
		return nil
	}
	return p.errorf("expected ';', found %s", p.cur())
}

// ---- Statements ----

func (p *parser) statement() (Node, error) {
	t := p.cur()
	switch {
	case t.Kind == TokPunct && t.Text == "{":
		return p.block()
	case t.Kind == TokPunct && t.Text == ";":
		p.i++
		return &Empty{}, nil
	case t.Kind == TokKeyword:
		switch t.Text {
		case "var":
			return p.varStatement()
		case "function":
			return p.functionDecl()
		case "if":
			return p.ifStatement()
		case "for":
			return p.forStatement()
		case "while":
			return p.whileStatement()
		case "do":
			return p.doWhileStatement()
		case "return":
			return p.returnStatement()
		case "try":
			return p.tryStatement()
		case "throw":
			return p.throwStatement()
		case "switch":
			return p.switchStatement()
		case "break":
			p.i++
			b := &Break{}
			if t := p.cur(); t.Kind == TokIdent && !t.NewlineBefore {
				b.Label = t.Text
				p.i++
			}
			return b, p.semicolon()
		case "continue":
			p.i++
			c := &Continue{}
			if t := p.cur(); t.Kind == TokIdent && !t.NewlineBefore {
				c.Label = t.Text
				p.i++
			}
			return c, p.semicolon()
		case "with":
			return p.withStatement()
		case "debugger":
			p.i++
			return &Debugger{}, p.semicolon()
		}
	case t.Kind == TokIdent:
		// Labeled statement: ident ':' stmt.
		if n := p.peek(1); n.Kind == TokPunct && n.Text == ":" {
			p.i += 2
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return &Labeled{Label: t.Text, Body: body}, nil
		}
	}
	// Expression statement.
	x, err := p.expression(false)
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, p.semicolon()
}

func (p *parser) block() (*Block, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.atPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Body = append(b.Body, s)
	}
	p.i++ // consume '}'
	return b, nil
}

func (p *parser) varStatement() (Node, error) {
	decl, err := p.varDecl(false)
	if err != nil {
		return nil, err
	}
	return decl, p.semicolon()
}

// varDecl parses 'var' declarators; noIn suppresses 'in' as a binary
// operator inside initializers (for-in disambiguation).
func (p *parser) varDecl(noIn bool) (*VarDecl, error) {
	p.i++ // 'var'
	v := &VarDecl{}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &Declarator{Name: name}
		if p.eatPunct("=") {
			init, err := p.assignExpr(noIn)
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		v.Decls = append(v.Decls, d)
		if !p.eatPunct(",") {
			return v, nil
		}
	}
}

func (p *parser) functionDecl() (Node, error) {
	p.i++ // 'function'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, body, err := p.functionRest()
	if err != nil {
		return nil, err
	}
	return &FunctionDecl{Name: name, Params: params, Body: body}, nil
}

func (p *parser) functionRest() ([]string, *Block, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	var params []string
	for !p.atPunct(")") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, nil, err
		}
		params = append(params, name)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, nil, err
	}
	return params, body, nil
}

func (p *parser) parenExpr() (Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	x, err := p.expression(false)
	if err != nil {
		return nil, err
	}
	return x, p.expectPunct(")")
}

func (p *parser) ifStatement() (Node, error) {
	p.i++ // 'if'
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	stmt := &If{Cond: cond, Then: then}
	if p.atKeyword("else") {
		p.i++
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmt.Else = els
	}
	return stmt, nil
}

func (p *parser) forStatement() (Node, error) {
	p.i++ // 'for'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var init Node
	var err error
	switch {
	case p.atPunct(";"):
		// no init
	case p.atKeyword("var"):
		init, err = p.varDecl(true)
		if err != nil {
			return nil, err
		}
	default:
		init, err = p.expression(true)
		if err != nil {
			return nil, err
		}
	}
	if p.atKeyword("in") {
		p.i++
		right, err := p.expression(false)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &ForIn{Left: init, Right: right, Body: body}, nil
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	f := &For{Init: init}
	if !p.atPunct(";") {
		f.Cond, err = p.expression(false)
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		f.Post, err = p.expression(false)
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	f.Body, err = p.statement()
	return f, err
}

func (p *parser) whileStatement() (Node, error) {
	p.i++ // 'while'
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body}, nil
}

func (p *parser) doWhileStatement() (Node, error) {
	p.i++ // 'do'
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("while") {
		return nil, p.errorf("expected 'while' after do body")
	}
	p.i++
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	return &DoWhile{Body: body, Cond: cond}, p.semicolon()
}

func (p *parser) returnStatement() (Node, error) {
	p.i++ // 'return'
	r := &Return{}
	t := p.cur()
	if !(t.Kind == TokEOF || p.atPunct(";") || p.atPunct("}") || t.NewlineBefore) {
		arg, err := p.expression(false)
		if err != nil {
			return nil, err
		}
		r.Arg = arg
	}
	return r, p.semicolon()
}

func (p *parser) tryStatement() (Node, error) {
	p.i++ // 'try'
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	stmt := &Try{Body: body}
	if p.atKeyword("catch") {
		p.i++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		param, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		cbody, err := p.block()
		if err != nil {
			return nil, err
		}
		stmt.Catch = &Catch{Param: param, Body: cbody}
	}
	if p.atKeyword("finally") {
		p.i++
		fbody, err := p.block()
		if err != nil {
			return nil, err
		}
		stmt.Finally = fbody
	}
	if stmt.Catch == nil && stmt.Finally == nil {
		return nil, p.errorf("try without catch or finally")
	}
	return stmt, nil
}

func (p *parser) throwStatement() (Node, error) {
	p.i++ // 'throw'
	arg, err := p.expression(false)
	if err != nil {
		return nil, err
	}
	return &Throw{Arg: arg}, p.semicolon()
}

func (p *parser) switchStatement() (Node, error) {
	p.i++ // 'switch'
	disc, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := &Switch{Disc: disc}
	for !p.atPunct("}") {
		c := &Case{}
		switch {
		case p.atKeyword("case"):
			p.i++
			c.Test, err = p.expression(false)
			if err != nil {
				return nil, err
			}
		case p.atKeyword("default"):
			p.i++
		default:
			return nil, p.errorf("expected 'case' or 'default', found %s", p.cur())
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, s)
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.i++ // '}'
	return sw, nil
}

func (p *parser) withStatement() (Node, error) {
	p.i++ // 'with'
	obj, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &With{Obj: obj, Body: body}, nil
}

// ---- Expressions ----

// expression parses a full (possibly comma-sequenced) expression.
func (p *parser) expression(noIn bool) (Node, error) {
	x, err := p.assignExpr(noIn)
	if err != nil {
		return nil, err
	}
	if !p.atPunct(",") {
		return x, nil
	}
	seq := &Sequence{Exprs: []Node{x}}
	for p.eatPunct(",") {
		y, err := p.assignExpr(noIn)
		if err != nil {
			return nil, err
		}
		seq.Exprs = append(seq.Exprs, y)
	}
	return seq, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, ">>>=": true, "&=": true, "|=": true, "^=": true,
}

func (p *parser) assignExpr(noIn bool) (Node, error) {
	left, err := p.conditionalExpr(noIn)
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == TokPunct && assignOps[t.Text] {
		p.i++
		right, err := p.assignExpr(noIn)
		if err != nil {
			return nil, err
		}
		return &Assign{Op: t.Text, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) conditionalExpr(noIn bool) (Node, error) {
	cond, err := p.binaryExpr(0, noIn)
	if err != nil {
		return nil, err
	}
	if !p.eatPunct("?") {
		return cond, nil
	}
	then, err := p.assignExpr(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.assignExpr(noIn)
	if err != nil {
		return nil, err
	}
	return &Conditional{Cond: cond, Then: then, Else: els}, nil
}

// binaryPrec returns the precedence of a binary/logical operator token, or
// -1 when the token is not a binary operator. Higher binds tighter.
func binaryPrec(t Token, noIn bool) int {
	if t.Kind == TokKeyword {
		switch t.Text {
		case "in":
			if noIn {
				return -1
			}
			return 7
		case "instanceof":
			return 7
		}
		return -1
	}
	if t.Kind != TokPunct {
		return -1
	}
	switch t.Text {
	case "||":
		return 1
	case "&&":
		return 2
	case "|":
		return 3
	case "^":
		return 4
	case "&":
		return 5
	case "==", "!=", "===", "!==":
		return 6
	case "<", ">", "<=", ">=":
		return 7
	case "<<", ">>", ">>>":
		return 8
	case "+", "-":
		return 9
	case "*", "/", "%":
		return 10
	}
	return -1
}

func (p *parser) binaryExpr(minPrec int, noIn bool) (Node, error) {
	left, err := p.unaryExpr(noIn)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec := binaryPrec(t, noIn)
		if prec < 0 || prec < minPrec {
			return left, nil
		}
		p.i++
		right, err := p.binaryExpr(prec+1, noIn)
		if err != nil {
			return nil, err
		}
		if t.Text == "&&" || t.Text == "||" {
			left = &Logical{Op: t.Text, L: left, R: right}
		} else {
			left = &Binary{Op: t.Text, L: left, R: right}
		}
	}
}

func (p *parser) unaryExpr(noIn bool) (Node, error) {
	t := p.cur()
	switch {
	case t.Kind == TokPunct && (t.Text == "!" || t.Text == "~" || t.Text == "+" || t.Text == "-"):
		p.i++
		x, err := p.unaryExpr(noIn)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x}, nil
	case t.Kind == TokKeyword && (t.Text == "typeof" || t.Text == "void" || t.Text == "delete"):
		p.i++
		x, err := p.unaryExpr(noIn)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x}, nil
	case t.Kind == TokPunct && (t.Text == "++" || t.Text == "--"):
		p.i++
		x, err := p.unaryExpr(noIn)
		if err != nil {
			return nil, err
		}
		return &Update{Op: t.Text, Prefix: true, X: x}, nil
	}
	return p.postfixExpr(noIn)
}

func (p *parser) postfixExpr(noIn bool) (Node, error) {
	x, err := p.callExpr(noIn)
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == TokPunct && (t.Text == "++" || t.Text == "--") && !t.NewlineBefore {
		p.i++
		return &Update{Op: t.Text, X: x}, nil
	}
	return x, nil
}

// callExpr parses member accesses and calls left-associatively.
func (p *parser) callExpr(noIn bool) (Node, error) {
	var x Node
	var err error
	if p.atKeyword("new") {
		x, err = p.newExpr()
	} else {
		x, err = p.primaryExpr()
	}
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatPunct("."):
			t := p.cur()
			if t.Kind != TokIdent && t.Kind != TokKeyword {
				return nil, p.errorf("expected property name, found %s", t)
			}
			p.i++
			x = &Member{Obj: x, Prop: &Ident{Name: t.Text}}
		case p.eatPunct("["):
			idx, err := p.expression(false)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Member{Obj: x, Prop: idx, Computed: true}
		case p.atPunct("("):
			args, err := p.arguments()
			if err != nil {
				return nil, err
			}
			x = &Call{Callee: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) newExpr() (Node, error) {
	p.i++ // 'new'
	var callee Node
	var err error
	if p.atKeyword("new") {
		callee, err = p.newExpr()
	} else {
		callee, err = p.primaryExpr()
	}
	if err != nil {
		return nil, err
	}
	// Member accesses bind to the constructor expression before the
	// argument list: new a.b.C(x).
	for {
		if p.eatPunct(".") {
			t := p.cur()
			if t.Kind != TokIdent && t.Kind != TokKeyword {
				return nil, p.errorf("expected property name, found %s", t)
			}
			p.i++
			callee = &Member{Obj: callee, Prop: &Ident{Name: t.Text}}
			continue
		}
		if p.atPunct("[") {
			p.i++
			idx, err := p.expression(false)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			callee = &Member{Obj: callee, Prop: idx, Computed: true}
			continue
		}
		break
	}
	n := &New{Callee: callee}
	if p.atPunct("(") {
		args, err := p.arguments()
		if err != nil {
			return nil, err
		}
		n.Args = args
	}
	return n, nil
}

func (p *parser) arguments() ([]Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Node
	for !p.atPunct(")") {
		a, err := p.assignExpr(false)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	return args, p.expectPunct(")")
}

func (p *parser) primaryExpr() (Node, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.i++
		return &Ident{Name: t.Text}, nil
	case TokNumber:
		p.i++
		return &Literal{Kind: LitNumber, Value: t.Text}, nil
	case TokString:
		p.i++
		return &Literal{Kind: LitString, Value: t.Text}, nil
	case TokRegex:
		p.i++
		return &Literal{Kind: LitRegex, Value: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "this":
			p.i++
			return &This{}, nil
		case "true", "false":
			p.i++
			return &Literal{Kind: LitBool, Value: t.Text}, nil
		case "null":
			p.i++
			return &Literal{Kind: LitNull, Value: "null"}, nil
		case "undefined":
			p.i++
			return &Literal{Kind: LitUndefined, Value: "undefined"}, nil
		case "function":
			p.i++
			name := ""
			if p.cur().Kind == TokIdent {
				name = p.next().Text
			}
			params, body, err := p.functionRest()
			if err != nil {
				return nil, err
			}
			return &FunctionExpr{Name: name, Params: params, Body: body}, nil
		}
		return nil, p.errorf("unexpected keyword %q", t.Text)
	case TokPunct:
		switch t.Text {
		case "(":
			return p.parenExpr()
		case "[":
			return p.arrayLiteral()
		case "{":
			return p.objectLiteral()
		}
		return nil, p.errorf("unexpected token %q", t.Text)
	default:
		return nil, p.errorf("unexpected end of input")
	}
}

func (p *parser) arrayLiteral() (Node, error) {
	p.i++ // '['
	arr := &ArrayLit{}
	for !p.atPunct("]") {
		if p.eatPunct(",") {
			continue // elision
		}
		e, err := p.assignExpr(false)
		if err != nil {
			return nil, err
		}
		arr.Elems = append(arr.Elems, e)
		if !p.atPunct("]") {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	p.i++ // ']'
	return arr, nil
}

func (p *parser) objectLiteral() (Node, error) {
	p.i++ // '{'
	obj := &ObjectLit{}
	for !p.atPunct("}") {
		t := p.cur()
		var key string
		switch t.Kind {
		case TokIdent, TokKeyword, TokString, TokNumber:
			key = t.Text
			p.i++
		default:
			return nil, p.errorf("expected property key, found %s", t)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		val, err := p.assignExpr(false)
		if err != nil {
			return nil, err
		}
		obj.Props = append(obj.Props, &Property{Key: key, Value: val})
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return obj, nil
}
