package jsast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders an AST back to JavaScript source. The output is normalized
// (canonical spacing, explicit semicolons, fully parenthesized nesting
// where precedence requires it) and re-parses to an equivalent tree; the
// corpus tooling uses it to canonicalize unpacked scripts.
func Print(n Node) string {
	var p printer
	p.node(n, 0)
	return p.b.String()
}

type printer struct {
	b strings.Builder
}

func (p *printer) ws(indent int) {
	for i := 0; i < indent; i++ {
		p.b.WriteString("  ")
	}
}

// node prints a statement-position node.
func (p *printer) node(n Node, indent int) {
	switch v := n.(type) {
	case *Program:
		for _, s := range v.Body {
			p.node(s, indent)
		}
	case *FunctionDecl:
		p.ws(indent)
		fmt.Fprintf(&p.b, "function %s(%s) ", v.Name, strings.Join(v.Params, ", "))
		p.block(v.Body, indent)
		p.b.WriteByte('\n')
	case *VarDecl:
		p.ws(indent)
		p.varDecl(v)
		p.b.WriteString(";\n")
	case *Block:
		p.ws(indent)
		p.block(v, indent)
		p.b.WriteByte('\n')
	case *ExprStmt:
		p.ws(indent)
		p.expr(v.X, precLowest)
		p.b.WriteString(";\n")
	case *If:
		p.ws(indent)
		p.b.WriteString("if (")
		p.expr(v.Cond, precLowest)
		p.b.WriteString(") ")
		p.nested(v.Then, indent)
		if v.Else != nil {
			p.ws(indent)
			p.b.WriteString("else ")
			p.nested(v.Else, indent)
		}
	case *For:
		p.ws(indent)
		p.b.WriteString("for (")
		if d, ok := v.Init.(*VarDecl); ok {
			p.varDecl(d)
		} else if v.Init != nil {
			p.expr(v.Init, precLowest)
		}
		p.b.WriteString("; ")
		if v.Cond != nil {
			p.expr(v.Cond, precLowest)
		}
		p.b.WriteString("; ")
		if v.Post != nil {
			p.expr(v.Post, precLowest)
		}
		p.b.WriteString(") ")
		p.nested(v.Body, indent)
	case *ForIn:
		p.ws(indent)
		p.b.WriteString("for (")
		if d, ok := v.Left.(*VarDecl); ok {
			p.varDecl(d)
		} else {
			p.expr(v.Left, precLowest)
		}
		p.b.WriteString(" in ")
		p.expr(v.Right, precLowest)
		p.b.WriteString(") ")
		p.nested(v.Body, indent)
	case *While:
		p.ws(indent)
		p.b.WriteString("while (")
		p.expr(v.Cond, precLowest)
		p.b.WriteString(") ")
		p.nested(v.Body, indent)
	case *DoWhile:
		p.ws(indent)
		p.b.WriteString("do ")
		p.nested(v.Body, indent)
		p.ws(indent)
		p.b.WriteString("while (")
		p.expr(v.Cond, precLowest)
		p.b.WriteString(");\n")
	case *Return:
		p.ws(indent)
		p.b.WriteString("return")
		if v.Arg != nil {
			p.b.WriteByte(' ')
			p.expr(v.Arg, precLowest)
		}
		p.b.WriteString(";\n")
	case *Try:
		p.ws(indent)
		p.b.WriteString("try ")
		p.block(v.Body, indent)
		if v.Catch != nil {
			fmt.Fprintf(&p.b, " catch (%s) ", v.Catch.Param)
			p.block(v.Catch.Body, indent)
		}
		if v.Finally != nil {
			p.b.WriteString(" finally ")
			p.block(v.Finally, indent)
		}
		p.b.WriteByte('\n')
	case *Throw:
		p.ws(indent)
		p.b.WriteString("throw ")
		p.expr(v.Arg, precLowest)
		p.b.WriteString(";\n")
	case *Switch:
		p.ws(indent)
		p.b.WriteString("switch (")
		p.expr(v.Disc, precLowest)
		p.b.WriteString(") {\n")
		for _, c := range v.Cases {
			p.ws(indent + 1)
			if c.Test != nil {
				p.b.WriteString("case ")
				p.expr(c.Test, precLowest)
				p.b.WriteString(":\n")
			} else {
				p.b.WriteString("default:\n")
			}
			for _, s := range c.Body {
				p.node(s, indent+2)
			}
		}
		p.ws(indent)
		p.b.WriteString("}\n")
	case *Break:
		p.ws(indent)
		p.b.WriteString("break")
		if v.Label != "" {
			p.b.WriteByte(' ')
			p.b.WriteString(v.Label)
		}
		p.b.WriteString(";\n")
	case *Continue:
		p.ws(indent)
		p.b.WriteString("continue")
		if v.Label != "" {
			p.b.WriteByte(' ')
			p.b.WriteString(v.Label)
		}
		p.b.WriteString(";\n")
	case *Labeled:
		p.ws(indent)
		p.b.WriteString(v.Label)
		p.b.WriteString(": ")
		p.nested(v.Body, indent)
	case *With:
		p.ws(indent)
		p.b.WriteString("with (")
		p.expr(v.Obj, precLowest)
		p.b.WriteString(") ")
		p.nested(v.Body, indent)
	case *Empty:
		p.ws(indent)
		p.b.WriteString(";\n")
	case *Debugger:
		p.ws(indent)
		p.b.WriteString("debugger;\n")
	default:
		// Expression in statement position (defensive).
		p.ws(indent)
		p.expr(n, precLowest)
		p.b.WriteString(";\n")
	}
}

// nested prints the body of a control statement: blocks inline, other
// statements on their own line.
func (p *printer) nested(n Node, indent int) {
	if b, ok := n.(*Block); ok {
		p.block(b, indent)
		p.b.WriteByte('\n')
		return
	}
	p.b.WriteByte('\n')
	p.node(n, indent+1)
}

func (p *printer) block(b *Block, indent int) {
	p.b.WriteString("{\n")
	for _, s := range b.Body {
		p.node(s, indent+1)
	}
	p.ws(indent)
	p.b.WriteByte('}')
}

func (p *printer) varDecl(v *VarDecl) {
	p.b.WriteString("var ")
	for i, d := range v.Decls {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(d.Name)
		if d.Init != nil {
			p.b.WriteString(" = ")
			p.expr(d.Init, precAssign)
		}
	}
}

// Expression precedence levels for parenthesization.
const (
	precLowest      = 0 // sequence
	precAssign      = 1
	precConditional = 2
	precLogicalOr   = 3
	precLogicalAnd  = 4
	precBitOr       = 5
	precBitXor      = 6
	precBitAnd      = 7
	precEquality    = 8
	precRelational  = 9
	precShift       = 10
	precAdditive    = 11
	precMultiplicat = 12
	precUnary       = 13
	precPostfix     = 14
	precCall        = 15
	precPrimary     = 16
)

func binaryOpPrec(op string) int {
	switch op {
	case "||":
		return precLogicalOr
	case "&&":
		return precLogicalAnd
	case "|":
		return precBitOr
	case "^":
		return precBitXor
	case "&":
		return precBitAnd
	case "==", "!=", "===", "!==":
		return precEquality
	case "<", ">", "<=", ">=", "in", "instanceof":
		return precRelational
	case "<<", ">>", ">>>":
		return precShift
	case "+", "-":
		return precAdditive
	case "*", "/", "%":
		return precMultiplicat
	default:
		return precPrimary
	}
}

// expr prints an expression, parenthesizing when its precedence falls
// below the context's minimum.
func (p *printer) expr(n Node, min int) {
	prec := exprPrec(n)
	if prec < min {
		p.b.WriteByte('(')
		p.exprInner(n)
		p.b.WriteByte(')')
		return
	}
	p.exprInner(n)
}

func exprPrec(n Node) int {
	switch v := n.(type) {
	case *Sequence:
		return precLowest
	case *Assign:
		return precAssign
	case *Conditional:
		return precConditional
	case *Logical, *Binary:
		op := ""
		if l, ok := v.(*Logical); ok {
			op = l.Op
		} else {
			op = v.(*Binary).Op
		}
		return binaryOpPrec(op)
	case *Unary:
		return precUnary
	case *Update:
		if v.Prefix {
			return precUnary
		}
		return precPostfix
	case *Call, *New, *Member:
		return precCall
	case *FunctionExpr, *ObjectLit:
		// Function and object literals need parens in some statement
		// positions; treat them as low-precedence to be safe.
		return precAssign
	default:
		return precPrimary
	}
}

func (p *printer) exprInner(n Node) {
	switch v := n.(type) {
	case *Ident:
		p.b.WriteString(v.Name)
	case *Literal:
		p.literal(v)
	case *This:
		p.b.WriteString("this")
	case *ArrayLit:
		p.b.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(e, precAssign)
		}
		p.b.WriteByte(']')
	case *ObjectLit:
		p.b.WriteByte('{')
		for i, prop := range v.Props {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if isValidIdent(prop.Key) {
				p.b.WriteString(prop.Key)
			} else {
				p.b.WriteString(strconv.Quote(prop.Key))
			}
			p.b.WriteString(": ")
			p.expr(prop.Value, precAssign)
		}
		p.b.WriteByte('}')
	case *FunctionExpr:
		p.b.WriteString("function")
		if v.Name != "" {
			p.b.WriteByte(' ')
			p.b.WriteString(v.Name)
		}
		fmt.Fprintf(&p.b, "(%s) ", strings.Join(v.Params, ", "))
		p.block(v.Body, 0)
	case *Unary:
		p.b.WriteString(v.Op)
		if len(v.Op) > 1 { // typeof, void, delete
			p.b.WriteByte(' ')
		} else if needsUnarySpace(v.Op, v.X) {
			// Avoid fusing -(-a) into --a (and +(+a) into ++a).
			p.b.WriteByte(' ')
		}
		p.expr(v.X, precUnary)
	case *Update:
		if v.Prefix {
			p.b.WriteString(v.Op)
			p.expr(v.X, precUnary)
		} else {
			p.expr(v.X, precPostfix)
			p.b.WriteString(v.Op)
		}
	case *Binary:
		prec := binaryOpPrec(v.Op)
		p.expr(v.L, prec)
		fmt.Fprintf(&p.b, " %s ", v.Op)
		p.expr(v.R, prec+1)
	case *Logical:
		prec := binaryOpPrec(v.Op)
		p.expr(v.L, prec)
		fmt.Fprintf(&p.b, " %s ", v.Op)
		p.expr(v.R, prec+1)
	case *Assign:
		p.expr(v.L, precCall)
		fmt.Fprintf(&p.b, " %s ", v.Op)
		p.expr(v.R, precAssign)
	case *Conditional:
		p.expr(v.Cond, precLogicalOr)
		p.b.WriteString(" ? ")
		p.expr(v.Then, precAssign)
		p.b.WriteString(" : ")
		p.expr(v.Else, precAssign)
	case *Call:
		p.expr(v.Callee, precCall)
		p.args(v.Args)
	case *New:
		p.b.WriteString("new ")
		p.expr(v.Callee, precCall)
		p.args(v.Args)
	case *Member:
		p.expr(v.Obj, precCall)
		if v.Computed {
			p.b.WriteByte('[')
			p.expr(v.Prop, precLowest)
			p.b.WriteByte(']')
		} else {
			p.b.WriteByte('.')
			p.b.WriteString(v.Prop.(*Ident).Name)
		}
	case *Sequence:
		for i, e := range v.Exprs {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(e, precAssign)
		}
	default:
		fmt.Fprintf(&p.b, "/* %T */", n)
	}
}

// needsUnarySpace reports whether a sign operator would fuse with its
// operand's leading token into ++ or --.
func needsUnarySpace(op string, x Node) bool {
	if op != "-" && op != "+" {
		return false
	}
	switch v := x.(type) {
	case *Unary:
		return v.Op == op
	case *Update:
		return v.Prefix && strings.HasPrefix(v.Op, op)
	default:
		return false
	}
}

func (p *printer) args(args []Node) {
	p.b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.expr(a, precAssign)
	}
	p.b.WriteByte(')')
}

func (p *printer) literal(v *Literal) {
	switch v.Kind {
	case LitString:
		p.b.WriteString(quoteJSString(v.Value))
	case LitNumber, LitRegex:
		p.b.WriteString(v.Value)
	case LitBool, LitNull, LitUndefined:
		p.b.WriteString(v.Value)
	}
}

// quoteJSString renders a JS double-quoted string literal.
func quoteJSString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\x%02x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

func isValidIdent(s string) bool {
	if s == "" || jsKeywords[s] {
		// Keywords are legal property keys in ES5 object literals, and
		// our parser accepts them, so print them bare too — except the
		// empty string.
		return jsKeywords[s]
	}
	if !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	return true
}
