// Package jsast implements static analysis of JavaScript source: a lexer
// and parser for the ES5 subset that anti-adblock scripts use, an abstract
// syntax tree with a generic walker, and an unpacker for dynamically
// generated code (eval of string literals, %-escaped payloads, and Dean
// Edwards style p.a.c.k.e.r payloads).
//
// The paper (§5) fingerprints anti-adblock scripts by syntactic features
// extracted from ASTs; this package supplies those ASTs. The paper unpacks
// eval() with the Chrome V8 engine's script.parsed hook; Unpack reproduces
// the effect statically (see DESIGN.md, substitutions).
package jsast
