package adwars

import (
	"encoding/json"
	"math/rand"
	"testing"

	"adwars/internal/antiadblock"
)

func TestCompileFilterList(t *testing.T) {
	list, errs := CompileFilterList("t", `
! comment
||pagefair.com^$third-party
smashboards.com###noticeMain
@@||numerama.com/ads.js
`)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if list.Len() != 3 {
		t.Fatalf("rules = %d, want 3", list.Len())
	}
	dec, rule := list.MatchRequest(HTTPRequest{
		URL: "http://pagefair.com/x.js", Type: "script", PageDomain: "pub.com",
	})
	if dec.String() != "blocked" || rule == nil {
		t.Fatalf("decision = %v", dec)
	}
}

func TestParseFilterRule(t *testing.T) {
	r, err := ParseFilterRule("||example.com^$script,domain=pub.com")
	if err != nil {
		t.Fatal(err)
	}
	if !r.DomainAnchor || len(r.Domains) != 1 {
		t.Fatalf("parse wrong: %+v", r)
	}
	if _, err := ParseFilterRule("! comment"); err == nil {
		t.Fatal("comment should error")
	}
}

func TestWorldAndListsFacade(t *testing.T) {
	world := NewWorld(ScaledWorldConfig(9, 100))
	if world.Universe.Len() != 1000 {
		t.Fatalf("universe = %d", world.Universe.Len())
	}
	lists := GenerateFilterLists(world, 9)
	if lists.AAK == nil || lists.Combined == nil {
		t.Fatal("missing histories")
	}
	rev, ok := lists.Combined.Latest()
	if !ok || len(rev.Rules) == 0 {
		t.Fatal("empty combined list")
	}
}

func TestDetectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pos, neg []string
	for i := 0; i < 30; i++ {
		pos = append(pos,
			antiadblock.HTMLBaitScript("n", rng, antiadblock.GenOptions{}),
			antiadblock.HTTPBaitScript("http://x.com/ads.js", "n", rng, antiadblock.GenOptions{}))
		neg = append(neg,
			antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}),
			antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}))
	}
	det, err := TrainDetector(pos, neg, DefaultDetectorConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if det.NumFeatures() == 0 {
		t.Fatal("no features")
	}
	got, err := det.IsAntiAdblock(antiadblock.HTMLBaitScript("other", rng, antiadblock.GenOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("unseen bait script should classify positive")
	}
	got, err = det.IsAntiAdblock(antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("benign script should classify negative")
	}
	if _, err := det.IsAntiAdblock("((("); err == nil {
		t.Error("unparseable script must error")
	}
}

func TestTrainDetectorErrors(t *testing.T) {
	if _, err := TrainDetector([]string{"((("}, []string{")"}, DefaultDetectorConfig(1)); err == nil {
		t.Fatal("all-unparseable corpus must error")
	}
}

func TestDetectorSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pos, neg []string
	for i := 0; i < 25; i++ {
		pos = append(pos, antiadblock.HTMLBaitScript("n", rng, antiadblock.GenOptions{}))
		neg = append(neg,
			antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}),
			antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}))
	}
	det, err := TrainDetector(pos, neg, DefaultDetectorConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(det)
	if err != nil {
		t.Fatal(err)
	}
	var back Detector
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != det.NumFeatures() {
		t.Fatalf("features %d != %d", back.NumFeatures(), det.NumFeatures())
	}
	// Predictions must survive the round trip.
	for i := 0; i < 10; i++ {
		src := antiadblock.HTMLBaitScript("other", rng, antiadblock.GenOptions{})
		a, err := det.IsAntiAdblock(src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.IsAntiAdblock(src)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("prediction changed after round trip")
		}
	}
	// Non-boosted config serializes too.
	cfg := DefaultDetectorConfig(5)
	cfg.Boost = false
	svmDet, err := TrainDetector(pos, neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(svmDet); err != nil {
		t.Fatal(err)
	}
	var empty Detector
	if err := json.Unmarshal([]byte(`{"config":{},"vocabulary":["a"]}`), &empty); err == nil {
		t.Error("detector JSON without model must error")
	}
}
