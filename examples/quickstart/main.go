// Quickstart: the three core capabilities in one file — parse and match
// Adblock Plus filter rules, hide anti-adblock warning elements, and
// classify a JavaScript source as anti-adblocking with the §5 detector.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adwars"
	"adwars/internal/abp"
	"adwars/internal/antiadblock"
)

func main() {
	// 1. Compile a small anti-adblock filter list (rules from the paper).
	list, errs := adwars.CompileFilterList("demo", `
! Demo anti-adblock filter list
||pagefair.com^$third-party
@@||numerama.com/ads.js
smashboards.com###noticeMain
`)
	if len(errs) > 0 {
		log.Fatalf("filter list errors: %v", errs)
	}
	fmt.Printf("compiled %d rules\n", list.Len())

	// 2. Match HTTP requests the way an adblocker would.
	for _, q := range []adwars.HTTPRequest{
		{URL: "http://pagefair.com/static/adblock_detection/js/d.min.js",
			Type: abp.TypeScript, PageDomain: "news.example"},
		{URL: "http://numerama.com/ads.js?v=1",
			Type: abp.TypeScript, PageDomain: "numerama.com"},
		{URL: "http://news.example/app.js",
			Type: abp.TypeScript, PageDomain: "news.example"},
	} {
		decision, rule := list.MatchRequest(q)
		fmt.Printf("%-60s → %-8s", q.URL, decision)
		if rule != nil {
			fmt.Printf("  (rule: %s)", rule)
		}
		fmt.Println()
	}

	// 3. Hide anti-adblock warning elements.
	elems := []*abp.Element{
		{Tag: "div", ID: "noticeMain"},
		{Tag: "div", ID: "content"},
	}
	hidden := list.HiddenElements("smashboards.com", elems)
	for i := range elems {
		state := "visible"
		if _, ok := hidden[i]; ok {
			state = "HIDDEN"
		}
		fmt.Printf("element #%s on smashboards.com → %s\n", elems[i].ID, state)
	}

	// 4. Train the anti-adblock script detector on a tiny generated
	// corpus and classify an unseen script.
	rng := rand.New(rand.NewSource(1))
	var positives, negatives []string
	for i := 0; i < 40; i++ {
		// Cover both bait techniques of §3.1 so the model generalizes.
		positives = append(positives,
			antiadblock.HTMLBaitScript("noticeMain", rng, antiadblock.GenOptions{}),
			antiadblock.HTTPBaitScript("http://pub.example/ads.js", "notice", rng, antiadblock.GenOptions{}))
		negatives = append(negatives,
			antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}),
			antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}))
	}
	det, err := adwars.TrainDetector(positives, negatives, adwars.DefaultDetectorConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	unseen := antiadblock.HTTPBaitScript(
		"http://example.com/advertising.js", "abWarning", rng, antiadblock.GenOptions{})
	isAAB, err := det.IsAntiAdblock(unseen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector (%d features) says unseen HTTP-bait script is anti-adblock: %v\n",
		det.NumFeatures(), isAAB)
}
