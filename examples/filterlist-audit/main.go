// Filter-list audit: the §3 workflow as a library consumer would run it.
// Generate the synthetic filter-list histories, then audit the two lists
// the paper compares: rule-class mix, exception ratios, listed-domain
// overlap, and which list picked shared domains up first.
package main

import (
	"fmt"

	"adwars"
	"adwars/internal/abp"
)

func main() {
	world := adwars.NewWorld(adwars.ScaledWorldConfig(42, 20))
	lists := adwars.GenerateFilterLists(world, 42)

	for _, h := range []*adwars.ListHistory{lists.AAK, lists.Combined} {
		rev, _ := h.Latest()
		list := abp.NewList(h.Name, rev.Rules)
		fmt.Printf("== %s ==\n", h.Name)
		fmt.Printf("revisions: %d, rules: %d, listed domains: %d\n",
			h.Len(), list.Len(), len(list.Domains()))
		fmt.Printf("rules added/modified per revision: %.1f\n", h.ChurnPerRevision())

		counts := list.CountByClass()
		for _, c := range abp.AllClasses {
			fmt.Printf("  %-42s %5d (%4.1f%%)\n", c, counts[c],
				100*float64(counts[c])/float64(list.Len()))
		}
		exc, non := list.ExceptionDomainSplit()
		fmt.Printf("exception domains %d : non-exception domains %d (ratio %.1f:1)\n\n",
			len(exc), len(non), float64(len(exc))/float64(len(non)))
	}

	// Which list adds shared domains first? (Figure 3's question.)
	aakSeen := lists.AAK.DomainFirstSeen()
	celSeen := lists.Combined.DomainFirstSeen()
	celFirst, aakFirst, same := 0, 0, 0
	for d, at := range aakSeen {
		ct, ok := celSeen[d]
		if !ok {
			continue
		}
		switch {
		case ct.Before(at):
			celFirst++
		case at.Before(ct):
			aakFirst++
		default:
			same++
		}
	}
	fmt.Printf("shared domains: first in Combined EasyList %d, first in AAK %d, same day %d\n",
		celFirst, aakFirst, same)
}
