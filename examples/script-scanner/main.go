// Script scanner: the paper's proposed offline deployment (§5) — a filter
// list author periodically crawls sites, runs the trained model over every
// script, and reviews only the flagged ones, turning each detection into a
// candidate filter rule.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adwars"
	"adwars/internal/antiadblock"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	opt := antiadblock.GenOptions{PackProbability: 0.2}

	// Training corpus: vendor scripts vs. benign site scripts.
	var positives, negatives []string
	for i := 0; i < 30; i++ {
		for _, v := range antiadblock.Catalog {
			positives = append(positives,
				antiadblock.VendorScript(v, "http://pub.example/ads.js", "notice", rng, opt))
		}
	}
	for i := 0; i < len(positives)*2; i++ {
		negatives = append(negatives, antiadblock.RandomBenignScript(rng, opt))
	}
	det, err := adwars.TrainDetector(positives, negatives, adwars.DefaultDetectorConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d anti-adblock + %d benign scripts (%d features)\n\n",
		len(positives), len(negatives), det.NumFeatures())

	// "Crawl" a batch of unknown sites: some deploy detectors, some not.
	type crawled struct {
		site, url, src string
		truth          bool
	}
	var batch []crawled
	for i := 0; i < 10; i++ {
		site := fmt.Sprintf("site%02d.example", i)
		if i%3 == 0 {
			v := antiadblock.Catalog[i%len(antiadblock.Catalog)]
			batch = append(batch, crawled{
				site:  site,
				url:   v.ScriptURL(site),
				src:   antiadblock.VendorScript(v, "http://"+site+"/ads.js", "abNotice", rng, opt),
				truth: true,
			})
		} else {
			batch = append(batch, crawled{
				site: site,
				url:  "http://" + site + "/js/app.js",
				src:  antiadblock.RandomBenignScript(rng, opt),
			})
		}
	}

	// Scan and propose rules for detections.
	correct := 0
	for _, c := range batch {
		flagged, err := det.IsAntiAdblock(c.src)
		if err != nil {
			log.Printf("%s: unparseable script skipped: %v", c.site, err)
			continue
		}
		if flagged == c.truth {
			correct++
		}
		if flagged {
			rule := "||" + c.url[len("http://"):] + "$script"
			fmt.Printf("FLAGGED  %-16s → candidate rule: %s\n", c.site, rule)
		} else {
			fmt.Printf("clean    %-16s\n", c.site)
		}
	}
	fmt.Printf("\n%d/%d scripts classified correctly\n", correct, len(batch))
}
