// Retrospective measurement: the §4 workflow end to end on a scaled-down
// world — crawl monthly Wayback-style snapshots of the top sites, replay
// each against the filter-list version in force at that time, and print
// the coverage trajectory (the paper's Figures 5 and 6).
package main

import (
	"context"
	"fmt"
	"log"

	"adwars"
	"adwars/internal/experiments"
	"adwars/internal/stats"
)

func main() {
	lab := adwars.NewLab(adwars.ScaledWorldConfig(42, 20))

	months := lab.RetroMonths(4) // quarterly slice of Aug 2011 – Jul 2016
	fmt.Printf("crawling %d months of the top-%d...\n",
		len(months), int(5000*lab.Scale()))

	retro, err := lab.RunRetrospective(context.Background(), experiments.RetroConfig{
		Months: months,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %8s %8s %8s  |  %9s %9s\n",
		"month", "missing", "outdated", "partial", "AAK hits", "CEL hits")
	for _, m := range retro.Months {
		total := m.NotArchived + m.Outdated + m.Partial
		fmt.Printf("%-8s %8d %8d %8d  |  %9d %9d\n",
			stats.MonthLabel(m.Month), total, m.Outdated, m.Partial,
			m.HTTPTriggered["Anti-Adblock Killer"],
			m.HTTPTriggered["Combined EasyList"])
	}

	last := retro.Months[len(retro.Months)-1]
	fmt.Printf("\nJul 2016: AAK detects %d sites, Combined EasyList %d — the paper's\n",
		last.HTTPTriggered["Anti-Adblock Killer"],
		last.HTTPTriggered["Combined EasyList"])
	fmt.Println("finding that AAK's coverage dwarfs CEL's despite CEL's faster updates.")
	fmt.Printf("collected ML corpus: %d anti-adblock / %d benign scripts\n",
		len(retro.CorpusPos), len(retro.CorpusNeg))
}
