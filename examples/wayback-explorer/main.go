// Wayback explorer: drive the archive substrate directly — query the
// Availability JSON API for a site's monthly snapshots, fetch one, and
// inspect its HAR with archive-URL truncation, the way §4.1's crawler
// does.
package main

import (
	"fmt"
	"log"

	"adwars"
	"adwars/internal/stats"
	"adwars/internal/wayback"
)

func main() {
	world := adwars.NewWorld(adwars.ScaledWorldConfig(42, 20))
	domains := world.TopDomains(60)
	cfg := wayback.DefaultConfig(42)
	cfg.Robots, cfg.Admin, cfg.Undefined = 2, 1, 1
	archive := wayback.New(world, domains, cfg)

	// Pick a site with an anti-adblock deployment so the snapshot is
	// interesting.
	target := ""
	for _, d := range domains {
		if dep := world.DeploymentOf(d); dep != nil && dep.Start.Year() <= 2015 {
			target = d
			break
		}
	}
	if target == "" {
		log.Fatal("no deployed site in the top slice")
	}
	dep := world.DeploymentOf(target)
	fmt.Printf("site %s deploys %s anti-adblocking on %s\n\n",
		target, dep.Vendor.Name, dep.Start.Format("2006-01-02"))

	// Walk the availability API month by month.
	fmt.Println("month     availability")
	var fetched *wayback.Snapshot
	for _, m := range stats.MonthsBetween(cfg.Start, cfg.End) {
		body, err := archive.QueryAvailability(target, m)
		if err != nil {
			log.Fatal(err)
		}
		closest, err := wayback.ParseAvailability(body)
		if err != nil {
			log.Fatal(err)
		}
		status := "not archived"
		if closest != nil {
			ts, err := closest.Time()
			if err != nil {
				log.Fatal(err)
			}
			if wayback.WithinSkew(m, ts) {
				status = "archived @ " + ts.Format("2006-01-02")
				if fetched == nil && m.After(dep.Start) {
					snap, err := archive.Fetch(archive.RefFor(target, ts))
					if err == nil && !snap.Ref.Partial {
						fetched = snap
					}
				}
			} else {
				status = "outdated (closest " + ts.Format("2006-01-02") + ")"
			}
		}
		if m.Month()%6 == 1 { // print a biannual sample to keep output short
			fmt.Printf("%s   %s\n", stats.MonthLabel(m), status)
		}
	}

	if fetched == nil {
		log.Fatal("no post-deployment snapshot available")
	}
	fmt.Printf("\nsnapshot of %s at %s — HAR entries:\n",
		target, fetched.Ref.Timestamp.Format("2006-01-02"))
	for _, u := range fetched.HAR.URLs() {
		fmt.Printf("  archived:  %s\n  truncated: %s\n", u, wayback.TruncateURL(u))
	}
}
